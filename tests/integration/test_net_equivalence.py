"""The distributed runtime is transcript-identical to the simulator.

Acceptance oracle for the real runtime: for every scheme family, one
seeded run driven through actors (loopback, and TCP for a
representative case) must produce a message transcript *byte-identical*
to the per-event in-process :class:`Simulation`, along with equal
communication ledgers and query answers.  On top of that, the
checkpoint-backed failure harness: killing a site actor mid-stream and
restoring the cluster from its snapshot + WAL leaves final query
answers (and ledgers) exactly as if nothing ever failed.
"""

import os

import pytest

from repro import (
    Cormode05RankScheme,
    DeterministicCountScheme,
    DeterministicFrequencyScheme,
    DeterministicRankScheme,
    DistributedSamplingScheme,
    MedianBoostedScheme,
    RandomizedCountScheme,
    RandomizedFrequencyScheme,
    RandomizedRankScheme,
    Simulation,
    WindowedCountScheme,
)
from repro.net import Cluster, SiteUnavailableError, restore_cluster
from repro.runtime import TranscriptRecorder
from repro.service.job import resolve_query
from repro.workloads import (
    random_permutation_values,
    timestamped,
    uniform_sites,
    with_items,
    zipf_items,
)

K = 4
N = 3000
SEED = 42


def count_stream(n=N, k=K, seed=SEED):
    return list(uniform_sites(n, k, seed=seed))


def frequency_stream(n=N, k=K, seed=SEED):
    return list(
        with_items(
            uniform_sites(n, k, seed=seed),
            zipf_items(max(10, n // 50), alpha=1.2, seed=seed + 1),
        )
    )


def rank_stream(n=N, k=K, seed=SEED):
    sites = [s for s, _ in uniform_sites(n, k, seed=seed)]
    return list(zip(sites, random_permutation_values(n, seed=seed + 2)))


def window_stream(n=N, k=K, seed=SEED):
    return list(
        timestamped(uniform_sites(n, k, seed=seed), seed=seed, period=500.0)
    )


CASES = [
    pytest.param(
        lambda: RandomizedCountScheme(0.05),
        count_stream,
        [(None,), ("estimate",)],
        id="count-randomized",
    ),
    pytest.param(
        lambda: DeterministicCountScheme(0.05),
        count_stream,
        [("estimate",)],
        id="count-deterministic",
    ),
    pytest.param(
        lambda: RandomizedFrequencyScheme(0.1),
        frequency_stream,
        [("top_items", 3), ("estimate_frequency", 1)],
        id="frequency-randomized",
    ),
    pytest.param(
        lambda: DeterministicFrequencyScheme(0.1),
        frequency_stream,
        [("top_items", 3), ("estimate_frequency", 1)],
        id="frequency-deterministic",
    ),
    pytest.param(
        lambda: RandomizedRankScheme(0.15),
        rank_stream,
        [("estimate_rank", N // 2), ("estimate_total",)],
        id="rank-randomized",
    ),
    pytest.param(
        lambda: DeterministicRankScheme(0.15),
        rank_stream,
        [("estimate_rank", N // 2)],
        id="rank-deterministic",
    ),
    pytest.param(
        lambda: Cormode05RankScheme(0.15),
        rank_stream,
        [("estimate_rank", N // 2)],
        id="rank-cormode05",
    ),
    pytest.param(
        lambda: DistributedSamplingScheme(0.2),
        count_stream,
        [("estimate",), ("estimate_rank", K // 2)],
        id="sampling-level",
    ),
    pytest.param(
        lambda: MedianBoostedScheme(RandomizedCountScheme(0.1), 3),
        count_stream,
        [("estimate",)],
        id="count-boosted-median3",
    ),
    pytest.param(
        lambda: WindowedCountScheme(200, 0.2),
        window_stream,
        [("estimate",)],
        id="window-count",
    ),
]


def simulate(scheme, stream, seed=SEED, k=K):
    """Per-event reference run with an attached transcript recorder."""
    sim = Simulation(scheme, k, seed=seed)
    recorder = TranscriptRecorder().attach(sim.network)
    sim.run(stream)
    return sim, recorder


class TestLoopbackEquivalence:
    @pytest.mark.parametrize("make_scheme,make_stream,queries", CASES)
    def test_transcript_and_answers_identical(
        self, make_scheme, make_stream, queries
    ):
        stream = make_stream()
        sim, recorder = simulate(make_scheme(), stream)
        with Cluster(make_scheme(), K, seed=SEED) as cluster:
            cluster.run(stream, batch_size=512)
            assert cluster.transcript_bytes() == recorder.to_bytes()
            assert cluster.comm.snapshot() == sim.comm.snapshot()
            assert cluster.elements_processed == sim.elements_processed
            sim_answers = [
                resolve_query(sim.coordinator, q[0])(*q[1:]) for q in queries
            ]
            net_answers = [cluster.query(*q) for q in queries]
            assert net_answers == sim_answers


class TestTcpEquivalence:
    def test_tcp_transcript_byte_identical(self):
        """The acceptance case: a scheme run over real TCP framing."""
        stream = count_stream(n=4000)
        sim, recorder = simulate(RandomizedCountScheme(0.05), stream)
        with Cluster(
            RandomizedCountScheme(0.05), K, seed=SEED, transport="tcp"
        ) as cluster:
            cluster.run(stream, batch_size=1024)
            assert cluster.transcript_bytes() == recorder.to_bytes()
            assert cluster.comm.snapshot() == sim.comm.snapshot()
            assert cluster.query() == sim.coordinator.estimate()

    def test_tcp_rank_summaries_survive_framing(self):
        """Rank ships nested summary payloads; they must round-trip."""
        stream = rank_stream(n=2000)
        sim, recorder = simulate(RandomizedRankScheme(0.2), stream)
        with Cluster(
            RandomizedRankScheme(0.2), K, seed=SEED, transport="tcp"
        ) as cluster:
            cluster.run(stream, batch_size=512)
            assert cluster.transcript_bytes() == recorder.to_bytes()
            assert cluster.query("estimate_rank", 1000) == (
                sim.coordinator.estimate_rank(1000)
            )


class TestFailureInjection:
    @pytest.mark.parametrize(
        "make_scheme,query",
        [
            (lambda: RandomizedCountScheme(0.05), ("estimate",)),
            (lambda: RandomizedFrequencyScheme(0.1), ("top_items", 3)),
        ],
        ids=["count", "frequency"],
    )
    def test_kill_and_restore_preserves_answers(
        self, tmp_path, make_scheme, query
    ):
        stream = (
            count_stream() if query[0] == "estimate" else frequency_stream()
        )
        third = len(stream) // 3
        sim, _ = simulate(make_scheme(), stream)
        reference = getattr(sim.coordinator, query[0])(*query[1:])

        ckpt = os.path.join(str(tmp_path), "cluster-ckpt")
        cluster = Cluster(make_scheme(), K, seed=SEED, checkpoint_dir=ckpt)
        try:
            cluster.run(stream[:third], batch_size=512)
            cluster.checkpoint()
            # Post-checkpoint ingestion lives only in the WAL tail.
            cluster.run(stream[third : 2 * third], batch_size=512)
            cluster.kill_site(1)
            with pytest.raises(SiteUnavailableError):
                cluster.run(stream[2 * third :], batch_size=512)
        finally:
            cluster.close()

        restored = Cluster.restore(ckpt)
        try:
            # The failed batch was rolled back from the WAL; re-send the
            # remainder of the stream after recovery.
            restored.run(stream[2 * third :], batch_size=512)
            assert restored.query(*query) == reference
            assert restored.comm.snapshot() == sim.comm.snapshot()
            assert restored.elements_processed == len(stream)
        finally:
            restored.close()

    def test_dead_site_blocks_snapshots_too(self, tmp_path):
        ckpt = os.path.join(str(tmp_path), "ckpt")
        cluster = Cluster(
            DeterministicCountScheme(0.1), K, seed=1, checkpoint_dir=ckpt
        )
        try:
            cluster.run(count_stream(n=400, seed=1), batch_size=128)
            cluster.kill_site(0)
            with pytest.raises(SiteUnavailableError):
                cluster.checkpoint()
        finally:
            cluster.close()

    def test_restore_without_failure_continues_transcript(self, tmp_path):
        """Close cleanly mid-stream, restore, finish: same answers."""
        stream = count_stream()
        half = len(stream) // 2
        sim, _ = simulate(RandomizedCountScheme(0.05), stream)

        ckpt = os.path.join(str(tmp_path), "ckpt")
        cluster = Cluster(
            RandomizedCountScheme(0.05), K, seed=SEED, checkpoint_dir=ckpt
        )
        cluster.run(stream[:half], batch_size=512)
        cluster.close()  # snapshot is stale; the WAL carries the rest

        restored = Cluster.restore(ckpt)
        try:
            restored.run(stream[half:], batch_size=512)
            assert restored.query() == sim.coordinator.estimate()
            assert restored.comm.snapshot() == sim.comm.snapshot()
        finally:
            restored.close()


class TestCheckpointHygiene:
    def test_fresh_dir_required(self, tmp_path):
        ckpt = os.path.join(str(tmp_path), "ckpt")
        cluster = Cluster(
            DeterministicCountScheme(0.1), 2, seed=0, checkpoint_dir=ckpt
        )
        cluster.close()
        with pytest.raises(ValueError, match="already holds"):
            Cluster(DeterministicCountScheme(0.1), 2, seed=0, checkpoint_dir=ckpt)

    def test_restore_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            restore_cluster(os.path.join(str(tmp_path), "nothing"))

    def test_service_checkpoint_rejected(self, tmp_path):
        from repro import TrackingService

        directory = os.path.join(str(tmp_path), "svc")
        service = TrackingService(num_sites=2, seed=0, checkpoint_dir=directory)
        service.checkpoint()
        service.close()
        with pytest.raises(ValueError, match="tracking-service checkpoint"):
            restore_cluster(directory)
