"""Fault injection: behaviour under lossy uplinks.

The paper assumes reliable channels.  These tests document what happens
when that assumption breaks: protocols whose reports are *absolute
snapshots* (count, frequency counters) self-heal — a lost report is
repaired by the next one — while protocols that ship *summaries whose
mass is never re-sent* (rank) lose that mass proportionally.
"""

import pytest

from repro import (
    DeterministicCountScheme,
    DeterministicFrequencyScheme,
    RandomizedCountScheme,
    RandomizedRankScheme,
    Simulation,
)
from repro.workloads import random_permutation_values, uniform_sites

N, K = 40_000, 16


class TestNetworkDropKnob:
    def test_validates_rate(self):
        from repro.runtime import Network

        with pytest.raises(ValueError):
            Network(2, uplink_drop_rate=1.0)
        with pytest.raises(ValueError):
            Network(2, uplink_drop_rate=-0.1)

    def test_drops_are_counted_and_charged(self):
        sim = Simulation(
            DeterministicCountScheme(0.05), K, seed=1, uplink_drop_rate=0.2
        )
        sim.run(uniform_sites(N, K, seed=2))
        dropped = sim.network.dropped_uplink_messages
        assert dropped > 0
        # Charged regardless of loss: words reflect every send attempt.
        assert sim.comm.uplink_messages > dropped

    def test_zero_rate_is_lossless(self):
        sim = Simulation(
            DeterministicCountScheme(0.05), K, seed=1, uplink_drop_rate=0.0
        )
        sim.run(uniform_sites(5_000, K, seed=2))
        assert sim.network.dropped_uplink_messages == 0


class TestSelfHealingProtocols:
    def test_deterministic_count_self_heals(self):
        # Absolute counter reports: a lost report is repaired by the
        # next (1+eps)-growth report, so the end-of-stream error stays
        # close to the lossless guarantee.
        eps, rate = 0.05, 0.2
        sim = Simulation(
            DeterministicCountScheme(eps), K, seed=3, uplink_drop_rate=rate
        )
        sim.run(uniform_sites(N, K, seed=4))
        estimate = sim.coordinator.estimate()
        assert estimate <= N
        # Worst case adds ~one lost (1+eps) step per site on top of eps.
        assert estimate >= (1 - 3 * eps) * N

    def test_randomized_count_degrades_gracefully(self):
        eps, rate = 0.05, 0.2
        sim = Simulation(
            RandomizedCountScheme(eps), K, seed=5, uplink_drop_rate=rate
        )
        sim.run(uniform_sites(N, K, seed=6))
        estimate = sim.coordinator.estimate()
        # Reports are absolute, so the estimator stays in the right
        # ballpark despite 20% loss (some extra staleness noise).
        assert abs(estimate - N) <= 6 * eps * N

    def test_deterministic_frequency_self_heals(self):
        eps, rate = 0.05, 0.2
        sim = Simulation(
            DeterministicFrequencyScheme(eps), K, seed=7, uplink_drop_rate=rate
        )
        stream = [(i % K, i % 10) for i in range(N)]
        sim.run(stream)
        truth = N // 10
        est = sim.coordinator.estimate_frequency(0)
        assert est <= truth
        assert truth - est <= 3 * eps * N


class TestRankTreeRedundancy:
    def test_rank_tracker_tolerates_drops_via_tree_redundancy(self):
        # Rank summaries are shipped once, so naively a dropped summary
        # would lose its mass.  In practice the binary tree makes every
        # element covered by h+1 node summaries: a received *parent*
        # repairs a dropped leaf (canonical decomposition uses maximal
        # received nodes).  The residue is a modest *positive* bias —
        # the dropped leaf's Bernoulli samples linger in the pending
        # list and double-count with the repairing parent.
        eps, rate = 0.05, 0.25
        values = random_permutation_values(N, seed=8)
        sites = [s for s, _ in uniform_sites(N, K, seed=9)]
        sim = Simulation(
            RandomizedRankScheme(eps), K, seed=10, uplink_drop_rate=rate
        )
        sim.run(zip(sites, values))
        total = sim.coordinator.estimate_total()
        # Mass is essentially retained (no ~rate-sized loss)...
        assert total > (1 - rate / 2) * N
        # ...with a bounded double-counting bias on top.
        assert total < (1 + rate / 2) * N
