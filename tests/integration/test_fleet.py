"""The fleet telemetry plane end to end: /v1/fleet, metrics, alerts.

A live gateway per test, polled over HTTP like an operator would:
``/v1/fleet`` must report every hub ``up`` with nonzero capacity once
traffic flows, ``/metrics`` must expose the ``repro_fleet_*`` family
set plus build/process self-stats, fleet events must carry trace
exemplars that resolve at ``/v1/trace``, and killing a hub process
must flip it to ``down`` and fire a ``fleet``-kind alert *without any
further ingest* (the monitor's poll rounds wake the evaluator).
"""

import json
import time
import urllib.request

from repro import DeterministicCountScheme
from repro.net.gateway import GatewayThread
from repro.service import TrackingService
from repro.shard import ShardedTrackingService

FLEET_INTERVAL = 0.1

HUB_DOWN_RULES = {
    "rules": [
        {"name": "hub-down", "kind": "fleet", "metric": "hubs_down",
         "op": ">=", "value": 1},
    ],
}


def get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.load(response)


def ingest(gw, n_sites):
    payload = json.dumps({
        "site_ids": list(range(n_sites)) * 4,
        "items": [float(i % 7 + 1) for i in range(n_sites * 4)],
    }).encode()
    request = urllib.request.Request(gw.url + "/v1/ingest", data=payload)
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


def wait_for(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    return predicate()


def fleet_states(gw):
    return get(gw.url + "/v1/fleet")["states"]


def test_sharded_fleet_reports_every_hub_up_with_capacity():
    service = ShardedTrackingService(
        num_sites=8, num_shards=2, seed=11, executor="inline"
    )
    service.register(
        "total", DeterministicCountScheme(0.02), space_budget_words=10_000
    )
    try:
        with GatewayThread(service, fleet_interval=FLEET_INTERVAL) as gw:
            ingest(gw, 8)
            assert wait_for(lambda: fleet_states(gw)["up"] == 2)
            snap = get(gw.url + "/v1/fleet")
            assert snap["capacity"]["used_words"] > 0
            assert snap["capacity"]["budget_words"] == 20_000
            assert 0 < snap["capacity"]["ratio"] < 1
            for hub in snap["hubs"]:
                assert hub["state"] == "up"
                assert hub["heartbeat"] >= 1
                assert hub["rtt_ms"]["last"] is not None
                assert hub["jobs"]["total"]["space_words"] > 0

            with urllib.request.urlopen(
                gw.url + "/metrics", timeout=30
            ) as response:
                text = response.read().decode()
            fleet_families = {
                line.split()[2]
                for line in text.splitlines()
                if line.startswith("# TYPE repro_fleet_")
            }
            assert len(fleet_families) >= 5, sorted(fleet_families)
            assert "repro_build_info{" in text
            assert "repro_process_rss_bytes" in text
            assert "repro_process_open_fds" in text
            assert "repro_process_uptime_seconds" in text
            assert 'repro_fleet_hubs{state="up"} 2' in text

            # every hub joined; the exemplar resolves to its poll span
            events = get(gw.url + "/v1/fleet/events")["events"]
            joined = [e for e in events if e["event"] == "joined"]
            assert {e["hub"] for e in joined} == {"0", "1"}
            trace_id = joined[0]["trace_id"]
            assert trace_id
            spans = get(
                gw.url + f"/v1/trace?trace_id={trace_id}"
            )["spans"]
            assert any(s["name"] == "fleet_poll" for s in spans)
    finally:
        service.close()


def test_unsharded_gateway_monitors_the_local_service():
    service = TrackingService(num_sites=4, seed=3)
    service.register("total", DeterministicCountScheme(0.05))
    try:
        with GatewayThread(service, fleet_interval=FLEET_INTERVAL) as gw:
            assert wait_for(lambda: fleet_states(gw)["up"] == 1)
            (hub,) = get(gw.url + "/v1/fleet")["hubs"]
            assert hub["address"] == "in-process"
            assert hub["process"]["rss_bytes"] > 0
    finally:
        service.close()


def test_killed_hub_goes_down_and_fires_fleet_alert():
    service = ShardedTrackingService(
        num_sites=8, num_shards=2, seed=5, executor="process"
    )
    service.register("total", DeterministicCountScheme(0.02))
    try:
        with GatewayThread(
            service,
            fleet_interval=FLEET_INTERVAL,
            alert_rules=HUB_DOWN_RULES,
        ) as gw:
            ingest(gw, 8)
            assert wait_for(lambda: fleet_states(gw)["up"] == 2)
            round_trace = get(gw.url + "/healthz")  # gateway still sane
            assert round_trace["ok"]

            # the poll loop shares the FIFO pipes: inject the crash
            # under the same lock the monitor and ingest path use
            with gw.gateway.ingestor.lock:
                service.backends[1].submit("crash")
            assert wait_for(lambda: fleet_states(gw)["down"] == 1)

            def hub(name):
                snap = get(gw.url + "/v1/fleet")
                return {h["hub"]: h for h in snap["hubs"]}[name]

            assert hub("1")["state"] == "down"
            assert hub("1")["error"]
            # the surviving hub keeps heartbeating
            assert hub("0")["state"] == "up"
            beat = hub("0")["heartbeat"]
            assert wait_for(lambda: hub("0")["heartbeat"] > beat)

            # no ingest after the kill: the fleet rounds alone must
            # step the rule to firing
            def fired():
                events = get(gw.url + "/v1/alerts")["events"]
                return [
                    e for e in events
                    if e["rule"] == "hub-down" and e["state"] == "firing"
                ]
            (event,) = wait_for(fired) or [None]
            assert event, get(gw.url + "/v1/alerts")
            assert event["kind"] == "fleet"
            assert event["value"] >= 1.0

            down_events = [
                e for e in get(gw.url + "/v1/fleet/events")["events"]
                if e["event"] == "down"
            ]
            assert len(down_events) == 1  # one episode, one event
            assert down_events[0]["hub"] == "1"
    finally:
        service.close()


def test_cluster_hubs_expose_tcp_addresses():
    # zero-config cluster: each shard hub self-hosts an ExecHost on an
    # ephemeral TCP port; the fleet surface must name those addresses
    service = ShardedTrackingService(
        num_sites=4, num_shards=2, seed=9, executor="cluster"
    )
    service.register("total", DeterministicCountScheme(0.05))
    try:
        with GatewayThread(service, fleet_interval=FLEET_INTERVAL) as gw:
            assert wait_for(lambda: fleet_states(gw)["up"] == 2)
            snap = get(gw.url + "/v1/fleet")
            for hub in snap["hubs"]:
                assert ":" in (hub["address"] or "")
                assert hub["process"]["pid"] is not None
    finally:
        service.close()
