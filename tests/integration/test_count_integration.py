"""Integration tests: count tracking across workloads and over time.

These exercise whole protocol stacks (round machinery + estimators +
communication) against ground truth at many checkpoints, across the
arrival patterns the paper's model allows.
"""

import pytest

from repro import (
    DeterministicCountScheme,
    DistributedSamplingScheme,
    MedianBoostedScheme,
    RandomizedCountScheme,
)
from repro.analysis import evaluate_count_accuracy
from repro.workloads import (
    bursty_sites,
    round_robin,
    single_site,
    skewed_sites,
    uniform_sites,
)

N, K, EPS = 40_000, 16, 0.05


def make_workloads(n, k):
    return {
        "uniform": uniform_sites(n, k, seed=11),
        "round_robin": round_robin(n, k),
        "single_site": single_site(n, k, site_id=3),
        "skewed": skewed_sites(n, k, alpha=1.2, seed=12),
        "bursty": bursty_sites(n, k, burst=250, seed=13),
    }


class TestRandomizedCountAcrossWorkloads:
    @pytest.mark.parametrize("name", ["uniform", "round_robin", "single_site", "skewed", "bursty"])
    def test_tracks_continuously(self, name):
        stream = make_workloads(N, K)[name]
        report, sim = evaluate_count_accuracy(
            RandomizedCountScheme(EPS), K, stream, eps=2 * EPS,
            checkpoint_every=N // 50,
        )
        # Single unboosted copy: constant success probability per the
        # paper; 2*eps slack keeps the continuous success rate high.
        assert report.success_rate >= 0.8, report.errors
        assert report.mean_relative_error <= 2 * EPS

    def test_boosted_succeeds_at_almost_all_times(self):
        stream = uniform_sites(N, K, seed=21)
        scheme = MedianBoostedScheme(RandomizedCountScheme(EPS), 7)
        report, _ = evaluate_count_accuracy(
            scheme, K, stream, eps=2 * EPS, checkpoint_every=N // 100
        )
        assert report.success_rate >= 0.98

    def test_deterministic_never_fails(self):
        stream = uniform_sites(N, K, seed=22)
        report, _ = evaluate_count_accuracy(
            DeterministicCountScheme(EPS), K, stream, eps=EPS,
            checkpoint_every=N // 100,
        )
        assert report.success_rate == 1.0

    def test_sampling_baseline_tracks(self):
        stream = uniform_sites(N, K, seed=23)
        report, _ = evaluate_count_accuracy(
            DistributedSamplingScheme(EPS), K, stream, eps=3 * EPS,
            checkpoint_every=N // 50,
        )
        assert report.success_rate >= 0.8


class TestCommunicationComparisons:
    def test_cost_ordering_small_eps(self):
        # At eps = 0.01, k = 64: randomized < deterministic, and
        # sampling (1/eps^2) is the most expensive of the three.
        n, k, eps = 150_000, 64, 0.01
        words = {}
        for name, scheme in [
            ("rand", RandomizedCountScheme(eps)),
            ("det", DeterministicCountScheme(eps)),
            ("sampling", DistributedSamplingScheme(eps)),
        ]:
            from repro import Simulation

            sim = Simulation(scheme, k, seed=2, space_sample_interval=10**9)
            sim.run(uniform_sites(n, k, seed=3))
            words[name] = sim.comm.total_words
        assert words["rand"] < words["det"]
        assert words["det"] < words["sampling"]

    def test_randomized_communication_near_theory(self):
        from repro import Simulation
        from repro.analysis import rand_count_comm

        n, k, eps = 100_000, 25, 0.02
        sim = Simulation(RandomizedCountScheme(eps), k, seed=4)
        sim.run(uniform_sites(n, k, seed=5))
        theory = rand_count_comm(k, eps, n)
        measured = sim.comm.total_words
        # Within a small constant factor of the Theorem 2.1 formula.
        assert theory / 4 < measured < 8 * theory
