"""Pipelined (relaxed) dispatch: latency-mode semantics, pinned.

The contract (docs/relaxed-mode.md):

* ``relaxed=False`` is untouched — the lockstep cluster stays
  byte-identical to the in-process simulator (the seed transcripts).
* Relaxed mode never changes a *site's* local stream: per-connection
  FIFO preserves per-site event order exactly.
* Order-insensitive protocols (deterministic count: sites report local
  threshold crossings, the coordinator sums) therefore answer
  *identically* under relaxed dispatch.
* Order-sensitive protocols (randomized count's coordinator rounds)
  may drift, but stay within the scheme's ``eps * n`` error bound.
* The sharded facade's relaxed mode reorders nothing at all (each hub
  still sees its slice in order), so sharded answers are identical.
"""

import pytest

from repro import (
    DeterministicCountScheme,
    RandomizedCountScheme,
    RandomizedRankScheme,
    ShardedTrackingService,
)
from repro.net import Cluster
from repro.runtime import Simulation, batch_from_stream
from repro.workloads import bursty_sites

K = 8
N = 12_000
SEED = 17


@pytest.fixture(scope="module")
def stream():
    return batch_from_stream(bursty_sites(N, K, burst=96, seed=SEED))


class TestLockstepStaysExact:
    def test_lockstep_transcript_byte_identical_to_simulation(self, stream):
        site_ids, items = stream
        sim = Simulation(RandomizedCountScheme(0.05), K, seed=SEED)
        from repro.runtime import TranscriptRecorder

        recorder = TranscriptRecorder().attach(sim.network)
        sim.run_batched(site_ids, items)
        with Cluster(
            RandomizedCountScheme(0.05), K, seed=SEED, relaxed=False
        ) as cluster:
            cluster.ingest(site_ids, items)
            assert cluster.transcript_bytes() == recorder.to_bytes()
            assert cluster.query() == sim.coordinator.estimate()


class TestRelaxedCluster:
    def test_order_insensitive_scheme_is_exact(self, stream):
        site_ids, items = stream
        sim = Simulation(DeterministicCountScheme(0.02), K, seed=SEED)
        sim.run_batched(site_ids, items)
        with Cluster(
            DeterministicCountScheme(0.02), K, seed=SEED, relaxed=True,
            record_transcript=False,
        ) as cluster:
            cluster.ingest(site_ids, items)
            assert cluster.query() == sim.coordinator.estimate()
            assert cluster.comm.total_messages == sim.comm.total_messages
            assert cluster.elements_processed == N

    def test_randomized_count_within_error_bound(self, stream):
        site_ids, items = stream
        eps = 0.05
        with Cluster(
            RandomizedCountScheme(eps), K, seed=SEED, relaxed=True,
            record_transcript=False,
        ) as cluster:
            cluster.ingest(site_ids, items)
            estimate = cluster.query()
        assert abs(estimate - N) <= eps * N

    def test_rank_scheme_within_error_bound(self, stream):
        site_ids, _ = stream
        eps = 0.05
        values = list(range(N))
        with Cluster(
            RandomizedRankScheme(eps), K, seed=SEED, relaxed=True,
            record_transcript=False,
        ) as cluster:
            cluster.ingest(site_ids, values)
            rank = cluster.query("estimate_rank", N // 2)
        # The scheme's eps*n guarantee is with-constant-probability, not
        # worst-case; 2x is the deterministic sanity envelope the
        # accuracy benches also use for single runs.
        assert abs(rank - N // 2) <= 2 * eps * N

    def test_relaxed_over_tcp_matches_loopback_for_deterministic(
        self, stream
    ):
        site_ids, items = stream
        answers = {}
        for transport in ("loopback", "tcp"):
            with Cluster(
                DeterministicCountScheme(0.02), K, seed=SEED, relaxed=True,
                transport=transport, record_transcript=False,
            ) as cluster:
                cluster.ingest(site_ids, items)
                answers[transport] = (
                    cluster.query(), cluster.comm.total_messages
                )
        assert answers["loopback"] == answers["tcp"]

    def test_multiple_relaxed_batches_accumulate(self, stream):
        site_ids, items = stream
        with Cluster(
            DeterministicCountScheme(0.02), K, seed=SEED, relaxed=True,
            record_transcript=False,
        ) as cluster:
            for start in range(0, N, 2048):
                cluster.ingest(
                    site_ids[start:start + 2048], items[start:start + 2048]
                )
            assert cluster.elements_processed == N
            assert cluster.query() > 0


class TestRelaxedShardedFacade:
    @pytest.mark.parametrize("executor", ["inline", "thread"])
    def test_answers_identical_to_lockstep(self, stream, executor):
        site_ids, items = stream
        lockstep = ShardedTrackingService(
            num_sites=K, num_shards=4, seed=SEED, executor=executor
        )
        relaxed = ShardedTrackingService(
            num_sites=K, num_shards=4, seed=SEED, executor=executor,
            relaxed=True,
        )
        for service in (lockstep, relaxed):
            service.register("c", RandomizedCountScheme(0.05))
            service.register("m", RandomizedRankScheme(0.05))
        for start in range(0, N, 1024):
            lockstep.ingest(site_ids[start:start + 1024],
                            items[start:start + 1024])
            relaxed.ingest(site_ids[start:start + 1024],
                           items[start:start + 1024])
        assert relaxed.elements_processed == lockstep.elements_processed
        assert relaxed.query("c") == lockstep.query("c")
        assert relaxed.query("m", "estimate_total") == lockstep.query(
            "m", "estimate_total"
        )
        assert relaxed.status()["relaxed"] is True
        lockstep.close()
        relaxed.close()

    def test_fence_is_explicit_and_implicit(self, stream):
        site_ids, items = stream
        service = ShardedTrackingService(
            num_sites=K, num_shards=2, seed=SEED, executor="thread",
            relaxed=True,
        )
        service.register("c", DeterministicCountScheme(0.02))
        service.ingest(site_ids[:4096], items[:4096])
        service.fence()  # explicit drain
        assert service._group.pending == 0
        service.ingest(site_ids[4096:8192], items[4096:8192])
        # a read fences implicitly
        assert service.query("c") > 0
        assert service._group.pending == 0
        service.close()
