"""The shipped examples must run clean and print their tables."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

EXAMPLES = [
    ("quickstart.py", ["Count tracking", "Randomization saves"]),
    ("sensor_network.py", ["Sensor network", "Tracking over time"]),
    ("network_heavy_hitters.py", ["Heavy hitters", "recall"]),
    ("latency_quantiles.py", ["Latency quantiles", "p99"]),
    ("lower_bound_tour.py", ["Theorem 2.2", "1-bit problem", "x0"]),
    ("sliding_window.py", ["Sliding-window count", "window count ~ 0"]),
    ("multi_tenant_service.py", ["Multi-tenant service", "fleet aggregate"]),
    ("crash_recovery.py", ["crash recovery", "killed-and-restarted == never died"]),
    (
        "distributed_cluster.py",
        ["Distributed cluster", "byte-identical: True", "answers match the never-failed run: True"],
    ),
    ("load_gen.py", ["self-hosted gateway", "verified: HTTP == in-process"]),
]


@pytest.mark.parametrize("script,expected", EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs(script, expected):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    for needle in expected:
        assert needle in result.stdout, f"missing {needle!r} in {script} output"
