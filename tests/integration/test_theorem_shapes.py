"""Integration tests validating the paper's theorem *shapes*.

Small-scale versions of the benchmark experiments: each test checks the
qualitative claim of one theorem (who wins, how costs scale), so that the
benchmark tables can't silently drift from the paper's story.
"""

import math

import pytest

from repro import (
    DeterministicCountScheme,
    DistributedSamplingScheme,
    RandomizedCountScheme,
    Simulation,
)
from repro.analysis import repeat_success_rate
from repro.lowerbounds import (
    OneWayThresholdScheme,
    exact_probe_success,
    min_probes_for_success,
)
from repro.workloads import round_robin, uniform_sites


def run_words(scheme, n, k, seed=0):
    sim = Simulation(scheme, k, seed=seed, space_sample_interval=10**9)
    sim.run(uniform_sites(n, k, seed=seed + 1))
    return sim.comm.total_words


class TestTheorem21:
    """Randomized count tracking: accuracy and cost."""

    def test_fixed_time_success_probability(self):
        # "estimates n within eps*n with probability at least 0.9" (after
        # constant rescaling); we check the unboosted tracker clears 0.75
        # at a fixed time instance, as the Chebyshev analysis gives.
        n, k, eps = 30_000, 25, 0.05

        def one_run(seed):
            sim = Simulation(RandomizedCountScheme(eps), k, seed=seed)
            sim.run(uniform_sites(n, k, seed=1000 + seed))
            return abs(sim.coordinator.estimate() - n) <= 2 * eps * n

        assert repeat_success_rate(one_run, 40) >= 0.8

    def test_cost_grows_logarithmically_in_n(self):
        k, eps = 16, 0.02
        w1 = run_words(RandomizedCountScheme(eps), 25_000, k)
        w2 = run_words(RandomizedCountScheme(eps), 100_000, k)
        # 4x data => cost grows by ~log(4) rounds, far below 4x.
        assert w2 < 2.5 * w1

    def test_deterministic_cost_also_logarithmic(self):
        k, eps = 16, 0.02
        w1 = run_words(DeterministicCountScheme(eps), 25_000, k)
        w2 = run_words(DeterministicCountScheme(eps), 100_000, k)
        assert w2 < 2.5 * w1

    def test_cost_scales_inverse_eps(self):
        n, k = 100_000, 16
        w_loose = run_words(RandomizedCountScheme(0.04), n, k)
        w_tight = run_words(RandomizedCountScheme(0.01), n, k)
        # 4x tighter eps => ~4x more cost (up to overhead terms).
        assert 2.0 < w_tight / w_loose < 6.0


class TestTheorem22OneWay:
    """One-way randomized tracking cannot beat k/eps log N."""

    def test_one_way_pays_k_over_eps(self):
        n, k, eps = 40_000, 36, 0.02
        sim = Simulation(OneWayThresholdScheme(eps), k, one_way=True)
        sim.run(round_robin(n, k))
        one_way_words = sim.comm.total_words
        two_way = Simulation(RandomizedCountScheme(eps), k, seed=3)
        two_way.run(round_robin(n, k))
        assert two_way.comm.total_words < one_way_words

    def test_jitter_does_not_help_one_way(self):
        n, k, eps = 40_000, 36, 0.02
        plain = Simulation(OneWayThresholdScheme(eps), k, one_way=True)
        plain.run(round_robin(n, k))
        jittered = Simulation(
            OneWayThresholdScheme(eps, jitter=True), k, seed=5, one_way=True
        )
        jittered.run(round_robin(n, k))
        ratio = jittered.comm.total_words / plain.comm.total_words
        assert 0.6 < ratio < 1.7


class TestTheorem23And24LowerBounds:
    """Omega(k) per 1-bit instance; Omega(sqrt(k)/eps log N) overall."""

    def test_one_bit_needs_linear_probes(self):
        z_small = min_probes_for_success(256, target=0.8)
        z_large = min_probes_for_success(1024, target=0.8)
        # Linear scaling: 4x k requires ~4x probes.
        assert 3.0 < z_large / z_small < 5.0

    def test_sublinear_probes_fail(self):
        k = 1024
        assert exact_probe_success(k, int(math.sqrt(k))) < 0.75


class TestSamplingRegime:
    """When k = Omega(1/eps^2), sampling is the right tool (Section 1.2)."""

    def test_sampling_beats_deterministic_at_large_eps(self):
        # eps = 0.2, k = 400 >> 1/eps^2 = 25: sampling cost
        # ((1/eps^2 + k) log N) undercuts the deterministic k/eps log N.
        n, k, eps = 60_000, 400, 0.2
        det = run_words(DeterministicCountScheme(eps), n, k)
        samp = run_words(DistributedSamplingScheme(eps), n, k)
        assert samp < det

    def test_randomized_wins_when_k_small_relative(self):
        # k = 16 << 1/eps^2 = 10,000: the paper's algorithm beats sampling.
        n, k, eps = 100_000, 16, 0.01
        rand = run_words(RandomizedCountScheme(eps), n, k)
        samp = run_words(DistributedSamplingScheme(eps), n, k)
        assert rand < samp / 5
