"""Sharded vs unsharded equivalence: merged answers meet composed bounds.

The contract of :mod:`repro.shard`:

* a **one-shard** facade is the identity partition with pass-through
  seeds — byte-identical answers to an unsharded ``TrackingService``
  for every scheme and every query;
* **deterministic merge paths** (deterministic count, window count —
  whose sites depend only on their local stream) merge *exactly* at any
  shard count: the merged answer equals the unsharded answer;
* **randomized / k-dependent schemes** merge within the composed error
  bound ``eps * n`` (per-shard full-epsilon budgets; additive errors
  sum to ``eps * n``, independent variances compose — see
  :func:`repro.shard.merge.composed_error_bound`);
* executors are interchangeable: inline, thread and process backends
  produce identical answers for identical seeds.
"""

import bisect

import pytest

from repro import (
    Cormode05RankScheme,
    DeterministicCountScheme,
    DeterministicFrequencyScheme,
    DistributedSamplingScheme,
    RandomizedCountScheme,
    RandomizedFrequencyScheme,
    RandomizedRankScheme,
    ShardedTrackingService,
    TrackingService,
    WindowedCountScheme,
)
from repro.shard import UnmergeableQueryError, composed_error_bound
from repro.workloads import uniform_sites, with_items, zipf_items

K = 16
N = 30_000
SEED = 11


@pytest.fixture(scope="module")
def stream():
    pairs = list(
        with_items(
            uniform_sites(N, K, seed=SEED),
            zipf_items(300, alpha=1.2, seed=SEED + 1),
        )
    )
    return [s for s, _ in pairs], [v for _, v in pairs]


JOB_SPECS = (
    ("count-r", RandomizedCountScheme, 0.02),
    ("count-d", DeterministicCountScheme, 0.02),
    ("freq-r", RandomizedFrequencyScheme, 0.05),
    ("freq-d", DeterministicFrequencyScheme, 0.05),
    ("rank-r", RandomizedRankScheme, 0.05),
    ("rank-c", Cormode05RankScheme, 0.05),
    ("sample", DistributedSamplingScheme, 0.1),
)


def build(service):
    for name, factory, eps in JOB_SPECS:
        service.register(name, factory(eps))
    return service


@pytest.fixture(scope="module")
def reference(stream):
    service = build(TrackingService(num_sites=K, seed=SEED))
    service.ingest(*stream)
    yield service
    service.close()


@pytest.fixture(scope="module")
def sharded4(stream):
    service = build(
        ShardedTrackingService(num_sites=K, num_shards=4, seed=SEED)
    )
    service.ingest(*stream)
    yield service
    service.close()


QUERIES = (
    ("count-r", None, ()),
    ("count-d", None, ()),
    ("freq-r", "estimate_frequency", (1,)),
    ("freq-d", "estimate_frequency", (1,)),
    ("freq-d", "top_items", (5,)),
    ("freq-d", "heavy_hitters", (0.05,)),
    ("rank-r", "estimate_total", ()),
    ("rank-r", "estimate_rank", (10,)),
    ("rank-r", "quantile", (0.5,)),
    ("rank-c", "quantile", (0.9,)),
    ("sample", None, ()),
    ("sample", "quantile", (0.5,)),
    ("sample", "heavy_hitters", (0.2,)),
)


class TestSingleShardIdentity:
    """One shard == the unsharded service, transcript-identically."""

    def test_every_query_matches_exactly(self, stream, reference):
        sharded = build(
            ShardedTrackingService(num_sites=K, num_shards=1, seed=SEED)
        )
        sharded.ingest(*stream)
        for job, method, args in QUERIES:
            assert sharded.query(job, method, *args) == reference.query(
                job, method, *args
            ), (job, method, args)
        sharded.close()


class TestDeterministicMergePaths:
    """Seed-independent schemes merge exactly at any shard count."""

    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_deterministic_count_exact(self, stream, reference, shards):
        sharded = ShardedTrackingService(
            num_sites=K, num_shards=shards, seed=SEED
        )
        sharded.register("count-d", DeterministicCountScheme(0.02))
        sharded.ingest(*stream)
        assert sharded.query("count-d") == reference.query("count-d")
        sharded.close()

    def test_window_count_exact(self):
        unsharded = TrackingService(num_sites=8, seed=SEED)
        sharded = ShardedTrackingService(
            num_sites=8, num_shards=4, seed=SEED
        )
        for service in (unsharded, sharded):
            service.register("win", WindowedCountScheme(500, 0.1))
        events = [(i % 8, float(i)) for i in range(4_000)]
        site_ids = [s for s, _ in events]
        stamps = [t for _, t in events]
        unsharded.ingest(site_ids, stamps)
        sharded.ingest(site_ids, stamps)
        # Explicit and implicit clocks both merge exactly: per-site EH
        # mirrors are independent of fleet grouping.
        assert sharded.query("win") == unsharded.query("win")
        assert sharded.query(
            "win", "estimate", 3_999.0
        ) == unsharded.query("win", "estimate", 3_999.0)
        unsharded.close()
        sharded.close()


class TestComposedBounds:
    """Merged answers stay within eps * n of the truth at 4 shards."""

    def test_count_within_bound(self, stream, sharded4):
        bound = sharded4.error_bound("count-r")
        assert bound["bound"] == pytest.approx(0.02 * N)
        assert abs(sharded4.query("count-r") - N) <= bound["bound"]

    def test_frequency_within_bound(self, stream, sharded4):
        site_ids, items = stream
        for item in (0, 1, 2, 7):
            truth = items.count(item)
            for job in ("freq-r", "freq-d"):
                merged = sharded4.query(job, "estimate_frequency", item)
                assert abs(merged - truth) <= 0.05 * N, (job, item)

    def test_rank_and_quantile_within_bound(self, stream, sharded4):
        site_ids, items = stream
        ordered = sorted(items)
        probe = ordered[len(ordered) // 2]
        truth = bisect.bisect_left(ordered, probe)
        merged = sharded4.query("rank-r", "estimate_rank", probe)
        assert abs(merged - truth) <= 2 * 0.05 * N
        for phi in (0.25, 0.5, 0.9):
            q = sharded4.query("rank-r", "quantile", phi)
            lo = bisect.bisect_left(ordered, q)
            hi = bisect.bisect_right(ordered, q)
            # q's value interval must cover phi*n to within the bound.
            assert lo - 2 * 0.05 * N <= phi * N <= hi + 2 * 0.05 * N

    def test_heavy_hitters_cover_true_hitters(self, stream, sharded4):
        site_ids, items = stream
        counts = {}
        for v in items:
            counts[v] = counts.get(v, 0) + 1
        phi, eps = 0.05, 0.05
        merged = sharded4.query("freq-d", "heavy_hitters", phi)
        for item, c in counts.items():
            if c >= (phi + eps) * N:
                assert item in merged, item

    def test_top_items_agree_with_reference_counts(self, stream, sharded4):
        site_ids, items = stream
        counts = {}
        for v in items:
            counts[v] = counts.get(v, 0) + 1
        top_true = sorted(counts, key=counts.get, reverse=True)[:3]
        top_merged = [j for j, _ in sharded4.query("freq-d", "top_items", 3)]
        assert top_merged[0] == top_true[0]
        assert set(top_merged) == set(top_true)


class TestExecutorEquivalence:
    """inline == thread == process for identical seeds."""

    def test_backends_agree_exactly(self, stream, sharded4):
        for executor in ("thread", "process"):
            other = build(
                ShardedTrackingService(
                    num_sites=K, num_shards=4, seed=SEED, executor=executor
                )
            )
            other.ingest(*stream)
            for job, method, args in QUERIES:
                assert other.query(job, method, *args) == sharded4.query(
                    job, method, *args
                ), (executor, job, method)
            other.close()


class TestEdgeCases:
    def test_empty_shards_merge_cleanly(self):
        # 8 sites over 8 shards, but only two sites ever receive events:
        # six shard hubs stay completely empty.
        service = ShardedTrackingService(num_sites=8, num_shards=8, seed=3)
        service.register("count", DeterministicCountScheme(0.05))
        service.register("rank", RandomizedRankScheme(0.1))
        service.register("freq", DeterministicFrequencyScheme(0.1))
        site_ids = [0, 5] * 500
        items = [1 + (i % 7) for i in range(1_000)]
        service.ingest(site_ids, items)
        assert service.query("count") >= 1_000 / 1.05
        assert service.query("freq", "top_items", 2)
        q = service.query("rank", "quantile", 0.5)
        assert 1 <= q <= 7
        assert service.query("freq", "heavy_hitters", 0.9) == {}
        service.close()

    def test_unmergeable_method_raises(self, sharded4):
        with pytest.raises(UnmergeableQueryError):
            sharded4.query("rank-r", "rank_candidates")
        # ... but the per-shard surface stays reachable.
        assert isinstance(
            sharded4.query_shard(0, "rank-r", "rank_candidates"), list
        )

    def test_composed_error_bound_accounting(self):
        accounting = composed_error_bound(0.05, [100, 0, 300])
        assert accounting["bound"] == pytest.approx(0.05 * 400)
        assert accounting["per_shard_bounds"] == [5.0, 0.0, 15.0]
