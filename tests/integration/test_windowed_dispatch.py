"""Windowed relaxed dispatch: credit-bounded pipelining, pinned.

The contract (docs/relaxed-mode.md -> "Windowing"):

* ``window=N`` / ``per_site_depth=M`` require ``relaxed=True`` — a
  lockstep cluster or facade with either knob is a ``ValueError``.
* At every depth the windowed answers — and the protocol message
  counts — are identical to unbounded relaxed: the window only changes
  *when* credit is reclaimed, never what runs where.
* Memory stays flat: the in-flight high-water mark never exceeds the
  window on unit-run streams (each coalesced super-run fits inside one
  window cut), no matter how many runs the batch carries.
* The sharded facade exposes the same knobs per shard hub and reports
  the negotiated mode via ``status()["dispatch_mode"]``.
"""

import pytest

from repro import (
    DeterministicCountScheme,
    RandomizedRankScheme,
    ShardedTrackingService,
)
from repro.net import Cluster
from repro.runtime import batch_from_stream
from repro.workloads import bursty_sites

K = 8
N = 12_000
SEED = 17

WINDOWS = (1, 3, 64)


@pytest.fixture(scope="module")
def stream():
    return batch_from_stream(bursty_sites(N, K, burst=96, seed=SEED))


@pytest.fixture(scope="module")
def relaxed_reference(stream):
    """Unbounded relaxed answer + message count, the equality anchor."""
    site_ids, items = stream
    with Cluster(
        DeterministicCountScheme(0.02), K, seed=SEED, relaxed=True,
        record_transcript=False,
    ) as cluster:
        cluster.ingest(site_ids, items)
        return cluster.query(), cluster.comm.total_messages


class TestWindowedCluster:
    @pytest.mark.parametrize("window", WINDOWS)
    def test_every_depth_matches_unbounded_relaxed(
        self, stream, relaxed_reference, window
    ):
        site_ids, items = stream
        with Cluster(
            DeterministicCountScheme(0.02), K, seed=SEED, relaxed=True,
            window=window, record_transcript=False,
        ) as cluster:
            cluster.ingest(site_ids, items)
            assert (
                cluster.query(), cluster.comm.total_messages
            ) == relaxed_reference
            stats = cluster.dispatch_stats()
        assert stats["mode"] == "windowed"
        assert stats["window"] == window
        assert stats["runs_posted"] > 0

    def test_per_site_depth_alone_matches_unbounded_relaxed(
        self, stream, relaxed_reference
    ):
        site_ids, items = stream
        with Cluster(
            DeterministicCountScheme(0.02), K, seed=SEED, relaxed=True,
            per_site_depth=2, record_transcript=False,
        ) as cluster:
            cluster.ingest(site_ids, items)
            assert (
                cluster.query(), cluster.comm.total_messages
            ) == relaxed_reference
            assert cluster.dispatch_mode == "windowed"

    def test_flat_memory_on_a_wide_unit_run_batch(self):
        # 100k unit runs (round-robin site ids): unbounded relaxed would
        # briefly queue all of them; the window pins the high-water mark.
        n = 100_000
        site_ids = [i % K for i in range(n)]
        items = [1] * n
        with Cluster(
            DeterministicCountScheme(0.05), K, seed=SEED, relaxed=True,
            window=64, record_transcript=False,
        ) as cluster:
            cluster.ingest(site_ids, items)
            stats = cluster.dispatch_stats()
            assert cluster.elements_processed == n
        assert stats["runs_posted"] == n
        assert stats["max_inflight_runs"] <= 64
        # Coalescing actually bites: far fewer frames than runs.
        assert stats["frames_posted"] < n / 4
        assert stats["runs_per_frame"] > 4

    def test_dispatch_mode_names(self):
        with Cluster(
            DeterministicCountScheme(0.05), 2, seed=1, relaxed=False
        ) as cluster:
            assert cluster.dispatch_mode == "lockstep"
        with Cluster(
            DeterministicCountScheme(0.05), 2, seed=1, relaxed=True,
            record_transcript=False,
        ) as cluster:
            assert cluster.dispatch_mode == "relaxed"
        with Cluster(
            DeterministicCountScheme(0.05), 2, seed=1, relaxed=True,
            window=8, record_transcript=False,
        ) as cluster:
            assert cluster.dispatch_mode == "windowed"

    @pytest.mark.parametrize("kwargs", [
        {"window": 8},
        {"per_site_depth": 2},
        {"window": 8, "per_site_depth": 2},
    ])
    def test_window_requires_relaxed(self, kwargs):
        with pytest.raises(ValueError, match="relaxed"):
            Cluster(DeterministicCountScheme(0.05), 2, seed=1, **kwargs)


class TestWindowedShardedFacade:
    @pytest.mark.parametrize(
        "executor", ["inline", "thread", "process", "cluster"]
    )
    def test_every_placement_matches_lockstep(self, stream, executor):
        site_ids, items = stream
        lockstep = ShardedTrackingService(
            num_sites=K, num_shards=2, seed=SEED, executor=executor
        )
        windowed = ShardedTrackingService(
            num_sites=K, num_shards=2, seed=SEED, executor=executor,
            relaxed=True, window=3, per_site_depth=2,
        )
        for service in (lockstep, windowed):
            service.register("c", DeterministicCountScheme(0.02))
            service.register("m", RandomizedRankScheme(0.05))
        for start in range(0, N, 1024):
            lockstep.ingest(site_ids[start:start + 1024],
                            items[start:start + 1024])
            windowed.ingest(site_ids[start:start + 1024],
                            items[start:start + 1024])
        assert windowed.elements_processed == lockstep.elements_processed
        assert windowed.query("c") == lockstep.query("c")
        assert windowed.query("m", "estimate_total") == lockstep.query(
            "m", "estimate_total"
        )
        status = windowed.status()
        assert status["dispatch_mode"] == "windowed"
        assert status["window"] == 3
        assert status["per_site_depth"] == 2
        lockstep.close()
        windowed.close()

    def test_dispatch_stats_and_stalls(self, stream):
        site_ids, items = stream
        service = ShardedTrackingService(
            num_sites=K, num_shards=2, seed=SEED, executor="thread",
            relaxed=True, window=1,
        )
        service.register("c", DeterministicCountScheme(0.02))
        for start in range(0, N, 512):
            service.ingest(site_ids[start:start + 512],
                           items[start:start + 512])
        stats = service.dispatch_stats()
        assert stats["mode"] == "windowed"
        assert stats["frames_posted"] > 0
        assert stats["runs_posted"] >= stats["frames_posted"]
        # window=1 serializes sub-batches: nearly every post reclaims
        # credit first.
        assert stats["window_stalls"] > 0
        assert service.query("c") > 0
        service.close()

    @pytest.mark.parametrize("kwargs", [
        {"window": 4},
        {"per_site_depth": 1},
    ])
    def test_window_requires_relaxed(self, kwargs):
        with pytest.raises(ValueError, match="relaxed"):
            ShardedTrackingService(
                num_sites=4, num_shards=2, seed=1, **kwargs
            )

    @pytest.mark.parametrize("kwargs", [
        {"relaxed": True, "window": 0},
        {"relaxed": True, "per_site_depth": 0},
    ])
    def test_bounds_must_be_positive(self, kwargs):
        with pytest.raises(ValueError):
            ShardedTrackingService(
                num_sites=4, num_shards=2, seed=1, **kwargs
            )
