"""Batched service ingestion must be transcript-identical to looped driving.

The acceptance bar for the batched engine: with identical seeds, a job
run through ``TrackingService.ingest`` returns the same estimates and the
same message counts as the same scheme run through ``Simulation.process``
event by event.  This holds because run decomposition preserves global
arrival order and every ``on_elements`` override is exactly equivalent to
its per-event path (same sends, same RNG draw order).
"""

import pytest

from repro import (
    Cormode05RankScheme,
    DeterministicCountScheme,
    DeterministicFrequencyScheme,
    RandomizedCountScheme,
    RandomizedFrequencyScheme,
    RandomizedRankScheme,
    Simulation,
    TrackingService,
)
from repro.cli import main as cli_main
from repro.runtime import OneWayViolation, batch_from_stream
from repro.workloads import multi_tenant, uniform_sites

np = pytest.importorskip("numpy")

K = 9
N = 12_000
SEED = 21


def tenant_stream(n=N, k=K, labeled=False):
    return list(
        multi_tenant(n, k, tenants=3, burst=16, seed=4, labeled=labeled)
    )


def run_both(scheme_factory, stream, k=K, seed=SEED, **net_kwargs):
    """Run looped Simulation and batched service; return both."""
    sim = Simulation(scheme_factory(), k, seed=seed, **net_kwargs)
    for site_id, item in stream:
        sim.process(site_id, item)
    service = TrackingService(num_sites=k, seed=seed, **net_kwargs)
    service.register("job", scheme_factory(), seed=seed)
    sids, items = batch_from_stream(stream)
    service.ingest(np.asarray(sids), items)
    return sim, service.job("job")


SCHEMES = [
    ("count/randomized", lambda: RandomizedCountScheme(0.05)),
    ("count/deterministic", lambda: DeterministicCountScheme(0.05)),
    ("frequency/randomized", lambda: RandomizedFrequencyScheme(0.1)),
    ("frequency/deterministic", lambda: DeterministicFrequencyScheme(0.1)),
    ("rank/randomized", lambda: RandomizedRankScheme(0.1)),
    ("rank/cormode05", lambda: Cormode05RankScheme(0.1)),
]


class TestBatchedLoopedEquivalence:
    @pytest.mark.parametrize("name,factory", SCHEMES, ids=[s[0] for s in SCHEMES])
    def test_message_counts_identical(self, name, factory):
        sim, job = run_both(factory, tenant_stream())
        assert job.comm.snapshot() == sim.comm.snapshot()

    def test_count_estimates_identical(self):
        sim, job = run_both(lambda: RandomizedCountScheme(0.05), tenant_stream())
        assert job.query() == sim.coordinator.estimate()

    def test_frequency_estimates_identical(self):
        sim, job = run_both(
            lambda: RandomizedFrequencyScheme(0.1), tenant_stream()
        )
        assert job.query("top_items", 10) == sim.coordinator.top_items(10)

    def test_rank_estimates_identical(self):
        sim, job = run_both(lambda: RandomizedRankScheme(0.1), tenant_stream())
        for q in (0.25, 0.5, 0.9):
            assert job.query("quantile", q) == sim.coordinator.quantile(q)

    def test_equivalence_on_uniform_interleave(self):
        # Run lengths ~1: the decomposition degenerates to per-event calls
        # and must still be exact.
        stream = list(uniform_sites(4000, K, seed=8))
        sim, job = run_both(lambda: RandomizedCountScheme(0.1), stream)
        assert job.comm.snapshot() == sim.comm.snapshot()
        assert job.query() == sim.coordinator.estimate()

    def test_tiny_epsilon_closed_form_terminates_and_matches(self):
        # eps below float resolution makes (1+eps)*last round to last; the
        # per-event test then fires every increment and the closed form
        # must do the same instead of spinning (regression).
        eps = 1e-17
        stream = [(0, 1)] * 40 + [(1, 1)] * 20
        a = Simulation(DeterministicCountScheme(eps), 2, seed=1)
        a.run(stream)
        b = Simulation(DeterministicCountScheme(eps), 2, seed=1)
        b.run_batched(*batch_from_stream(stream))
        assert a.comm.snapshot() == b.comm.snapshot()
        assert a.coordinator.estimate() == b.coordinator.estimate() == 60

    def test_simulation_run_batched_matches_run(self):
        stream = tenant_stream(n=6000)
        a = Simulation(RandomizedFrequencyScheme(0.1), K, seed=3)
        a.run(stream)
        b = Simulation(RandomizedFrequencyScheme(0.1), K, seed=3)
        b.run_batched(*batch_from_stream(stream))
        assert a.comm.snapshot() == b.comm.snapshot()
        assert a.coordinator.top_items(5) == b.coordinator.top_items(5)


class TestFaultyNetworksUnderMultiplexing:
    def test_one_way_fleet_runs_one_way_capable_jobs(self):
        stream = tenant_stream(n=4000)
        sim, job = run_both(
            lambda: DeterministicCountScheme(0.05), stream, one_way=True
        )
        assert job.comm.snapshot() == sim.comm.snapshot()
        assert job.comm.downlink_messages == 0
        assert job.comm.broadcast_messages == 0

    def test_one_way_fleet_rejects_two_way_schemes(self):
        service = TrackingService(num_sites=4, seed=1, one_way=True)
        service.register("bad", RandomizedCountScheme(0.1))
        with pytest.raises(OneWayViolation):
            service.ingest([0, 1, 2, 3] * 10, None)

    @pytest.mark.parametrize("drop", [0.05, 0.3])
    def test_lossy_uplink_transcripts_match(self, drop):
        stream = tenant_stream(n=6000)
        sim, job = run_both(
            lambda: RandomizedCountScheme(0.05),
            stream,
            uplink_drop_rate=drop,
        )
        # Drops are charged-but-lost on both paths, from the same seed.
        assert job.comm.snapshot() == sim.comm.snapshot()
        assert (
            job.network.dropped_uplink_messages
            == sim.network.dropped_uplink_messages
        )
        assert job.network.dropped_uplink_messages > 0
        assert job.query() == sim.coordinator.estimate()

    def test_drop_streams_independent_across_jobs(self):
        service = TrackingService(num_sites=4, seed=1, uplink_drop_rate=0.2)
        service.register("a", DeterministicCountScheme(0.05))
        service.register("b", DeterministicCountScheme(0.05))
        service.ingest([i % 4 for i in range(8000)], None)
        # Same scheme, same traffic — but per-job loss realizations come
        # from per-job seeds, so the ledgers (post-drop deliveries drive
        # re-reports) should not be in lockstep.
        assert service["a"].seed != service["b"].seed


class TestServeCli:
    def test_serve_smoke(self, capsys):
        assert (
            cli_main(
                ["serve", "-k", "4", "-n", "3000", "--batch", "512", "--seed", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "service:" in out
        assert "(fleet total)" in out
        assert "events/s" in out

    def test_serve_custom_jobs(self, capsys):
        assert (
            cli_main(
                [
                    "serve",
                    "-k",
                    "4",
                    "-n",
                    "2000",
                    "--job",
                    "c=count/randomized:0.1",
                    "--job",
                    "q=rank/randomized:0.2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "count/randomized" in out
        assert "rank/randomized" in out

    def test_serve_bad_spec_errors(self, capsys):
        assert cli_main(["serve", "-n", "100", "--job", "nonsense"]) == 2
        assert "bad job spec" in capsys.readouterr().err
