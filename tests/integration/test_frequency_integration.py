"""Integration tests: frequency tracking on realistic item workloads."""

import pytest

from repro import (
    DeterministicFrequencyScheme,
    DistributedSamplingScheme,
    RandomizedFrequencyScheme,
    Simulation,
)
from repro.analysis import evaluate_frequency_accuracy
from repro.workloads import (
    skewed_sites,
    uniform_sites,
    with_items,
    zipf_items,
)

N, K, EPS = 40_000, 16, 0.05


def zipf_stream(n=N, k=K, alpha=1.3, seed=31):
    return with_items(
        uniform_sites(n, k, seed=seed), zipf_items(500, alpha=alpha, seed=seed + 1)
    )


class TestRandomizedFrequencyIntegration:
    def test_continuous_tracking_head_items(self):
        report, _ = evaluate_frequency_accuracy(
            RandomizedFrequencyScheme(EPS), K, zipf_stream(), eps=2 * EPS,
            track_items=[0, 1, 2, 5, 10],
        )
        assert report.success_rate >= 0.85

    def test_skewed_site_arrivals(self):
        stream = with_items(
            skewed_sites(N, K, alpha=1.5, seed=32),
            zipf_items(500, alpha=1.3, seed=33),
        )
        report, _ = evaluate_frequency_accuracy(
            RandomizedFrequencyScheme(EPS), K, stream, eps=2 * EPS,
            track_items=[0, 1, 2],
        )
        assert report.success_rate >= 0.85

    def test_heavy_hitter_recall_and_precision(self):
        from collections import Counter

        stream = list(zipf_stream(alpha=1.6))
        truth = Counter(j for _, j in stream)
        n = len(stream)
        sim = Simulation(RandomizedFrequencyScheme(0.02), K, seed=3)
        sim.run(stream)
        phi = 0.05
        hh = sim.coordinator.heavy_hitters(phi)
        true_heavy = {j for j, c in truth.items() if c >= (phi + 0.04) * n}
        true_light = {j for j, c in truth.items() if c <= (phi - 0.04) * n}
        assert true_heavy <= set(hh)  # recall of clearly-heavy items
        assert not (set(hh) & true_light)  # no clearly-light item reported


class TestFrequencyComparisons:
    def test_all_schemes_agree_on_head_item(self):
        from collections import Counter

        stream = list(zipf_stream(alpha=1.5))
        truth = Counter(j for _, j in stream)
        n = len(stream)
        for scheme in (
            RandomizedFrequencyScheme(EPS),
            DeterministicFrequencyScheme(EPS),
            DistributedSamplingScheme(EPS),
        ):
            sim = Simulation(scheme, K, seed=7)
            sim.run(stream)
            est = sim.coordinator.estimate_frequency(0)
            assert abs(est - truth[0]) <= 3 * EPS * n, scheme.name

    def test_communication_ordering(self):
        n, k, eps = 120_000, 64, 0.01
        stream = list(
            with_items(
                uniform_sites(n, k, seed=41), zipf_items(1000, seed=42)
            )
        )
        words = {}
        for name, scheme in [
            ("rand", RandomizedFrequencyScheme(eps)),
            ("det", DeterministicFrequencyScheme(eps)),
        ]:
            sim = Simulation(scheme, k, seed=8, space_sample_interval=10**9)
            sim.run(stream)
            words[name] = sim.comm.total_words
        assert words["rand"] < words["det"] / 2

    def test_space_ordering_matches_table1(self):
        # Table 1: randomized uses O(1/(eps sqrt(k))) per site vs the
        # deterministic O(1/eps) — randomized should use less site space.
        n, k, eps = 60_000, 64, 0.02
        stream = list(
            with_items(uniform_sites(n, k, seed=51), zipf_items(800, seed=52))
        )
        spaces = {}
        for name, scheme in [
            ("rand", RandomizedFrequencyScheme(eps)),
            ("det", DeterministicFrequencyScheme(eps)),
        ]:
            sim = Simulation(scheme, k, seed=9, space_sample_interval=500)
            sim.run(stream)
            spaces[name] = sim.space.max_site_words
        assert spaces["rand"] < spaces["det"]
