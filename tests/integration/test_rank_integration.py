"""Integration tests: rank/quantile tracking end to end."""

import bisect

import pytest

from repro import (
    Cormode05RankScheme,
    DeterministicRankScheme,
    DistributedSamplingScheme,
    RandomizedRankScheme,
    Simulation,
)
from repro.analysis import evaluate_rank_accuracy
from repro.workloads import (
    gaussian_values,
    random_permutation_values,
    sorted_values,
    uniform_sites,
)

N, K, EPS = 30_000, 16, 0.05


def value_stream(values, k=K, seed=61):
    sites = [s for s, _ in uniform_sites(len(values), k, seed=seed)]
    return list(zip(sites, values))


class TestRandomizedRankIntegration:
    @pytest.mark.parametrize(
        "values",
        [
            random_permutation_values(N, seed=62),
            sorted_values(N),
            sorted_values(N, descending=True),
        ],
        ids=["random", "ascending", "descending"],
    )
    def test_continuous_tracking(self, values):
        stream = value_stream(values)
        report, _ = evaluate_rank_accuracy(
            RandomizedRankScheme(EPS), K, stream, eps=2 * EPS,
            query_points=[N // 4, N // 2, 3 * N // 4],
            checkpoint_every=N // 20,
        )
        assert report.success_rate >= 0.8

    def test_gaussian_values_quantiles(self):
        values = gaussian_values(N, mu=100.0, sigma=15.0, seed=63)
        stream = value_stream(values)
        sim = Simulation(RandomizedRankScheme(EPS), K, seed=5)
        sim.run(stream)
        svals = sorted(values)
        for phi in (0.1, 0.5, 0.9):
            q = sim.coordinator.quantile(phi)
            true_rank = bisect.bisect_left(svals, q)
            assert abs(true_rank - phi * N) <= 3 * EPS * N

    def test_duplicate_heavy_values(self):
        # Streams with massive duplication (the frequency-via-rank
        # reduction depends on ties being handled sanely).
        values = [7] * (N // 2) + [3] * (N // 4) + [11] * (N - N // 2 - N // 4)
        import random as _r

        _r.Random(0).shuffle(values)
        stream = value_stream(values)
        sim = Simulation(RandomizedRankScheme(EPS), K, seed=6)
        sim.run(stream)
        # rank(7) counts values < 7, i.e. all the 3s.
        est = sim.coordinator.estimate_rank(7)
        assert abs(est - N // 4) <= 3 * EPS * N


class TestRankComparisons:
    def test_all_schemes_accurate_at_median(self):
        values = random_permutation_values(N, seed=64)
        stream = value_stream(values)
        for scheme in (
            RandomizedRankScheme(EPS),
            DeterministicRankScheme(EPS),
            Cormode05RankScheme(EPS),
            DistributedSamplingScheme(EPS),
        ):
            sim = Simulation(scheme, K, seed=7)
            sim.run(stream)
            est = sim.coordinator.estimate_rank(N // 2)
            assert abs(est - N // 2) <= 3 * EPS * N, scheme.name

    def test_randomized_much_cheaper_than_snapshots(self):
        values = random_permutation_values(60_000, seed=65)
        stream = value_stream(values, k=16)
        words = {}
        for name, scheme in [
            ("rand", RandomizedRankScheme(0.02)),
            ("det", DeterministicRankScheme(0.02)),
        ]:
            sim = Simulation(scheme, 16, seed=8, space_sample_interval=10**9)
            sim.run(stream)
            words[name] = sim.comm.total_words
        assert words["rand"] < words["det"] / 5

    def test_frequency_reduction_via_rank(self):
        # The paper: rank tracking solves frequency tracking by breaking
        # ties — query rank(x, 0) vs rank(x, inf) as pairs.  We emulate by
        # estimating f(v) = rank(v + 1) - rank(v) on integer values.
        from collections import Counter

        values = [v % 20 for v in random_permutation_values(N, seed=66)]
        truth = Counter(values)
        stream = value_stream(values)
        sim = Simulation(RandomizedRankScheme(0.02), K, seed=9)
        sim.run(stream)
        for v in (0, 7, 19):
            est = sim.coordinator.estimate_rank(v + 1) - sim.coordinator.estimate_rank(v)
            assert abs(est - truth[v]) <= 4 * 0.02 * N
