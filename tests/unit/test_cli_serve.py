"""Unit tests for the service CLI: job specs, serve/restore smoke runs."""

import pytest

from repro import WindowedCountScheme
from repro.cli import build_parser, main, parse_job_spec


class TestParseJobSpec:
    def test_basic_spec(self):
        name, problem, scheme = parse_job_spec(
            "total=count/randomized:0.01", 0.5
        )
        assert name == "total"
        assert problem == "count"
        assert scheme.name == "count/randomized"
        assert scheme.epsilon == 0.01

    def test_default_epsilon_applies(self):
        _, _, scheme = parse_job_spec("hh=frequency/deterministic", 0.07)
        assert scheme.epsilon == 0.07

    def test_rank_spec(self):
        name, problem, scheme = parse_job_spec("p99=rank/cormode05:0.02", 0.5)
        assert (name, problem) == ("p99", "rank")
        assert scheme.name == "rank/cormode05"

    def test_window_spec(self):
        name, problem, scheme = parse_job_spec(
            "lastmin=window:60000/count:0.05", 0.5
        )
        assert (name, problem) == ("lastmin", "window")
        assert isinstance(scheme, WindowedCountScheme)
        assert scheme.window == 60_000
        assert scheme.epsilon == 0.05

    def test_window_spec_default_epsilon(self):
        _, _, scheme = parse_job_spec("w=window:500/count", 0.125)
        assert scheme.window == 500
        assert scheme.epsilon == 0.125

    @pytest.mark.parametrize(
        "bad",
        [
            "noequals",               # missing NAME=
            "=count/randomized",      # empty name
            "x=count",                # missing /SCHEME
            "x=count/",               # empty scheme
            "x=nosuch/randomized",    # unknown problem
            "x=count/nosuch",         # unknown scheme
            "x=count/randomized:abc", # non-numeric eps
            "x=count/randomized:1:2", # too many fields
            "x=window/count",         # window without a length
            "x=window:abc/count",     # non-integer window
            "x=window:100/nosuch",    # window scheme must be count
        ],
    )
    def test_invalid_specs_raise(self, bad):
        with pytest.raises(ValueError, match="bad job spec"):
            parse_job_spec(bad, 0.1)

    def test_window_zero_rejected_by_scheme(self):
        with pytest.raises(ValueError):
            parse_job_spec("w=window:0/count", 0.1)


class TestServeCli:
    def test_parser_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.problem == "serve"
        assert args.batch == 8192
        assert args.checkpoint_dir is None
        assert not args.resume

    def test_serve_smoke_default_jobs(self, capsys):
        assert main(["serve", "-k", "4", "-n", "3000", "--batch", "512"]) == 0
        out = capsys.readouterr().out
        assert "count/randomized" in out
        assert "(fleet total)" in out
        assert "ingested 3,000 events" in out

    def test_serve_smoke_explicit_jobs(self, capsys):
        assert main([
            "serve", "-k", "3", "-n", "2000",
            "--job", "t=count/deterministic:0.1",
            "--job", "w=window:500/count:0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "window/count" in out
        assert "win:" in out  # window estimate rendered

    def test_serve_bad_job_spec_fails_cleanly(self, capsys):
        assert main(["serve", "--job", "broken"]) == 2
        assert "bad job spec" in capsys.readouterr().err

    def test_serve_bad_batch_fails_cleanly(self, capsys):
        assert main(["serve", "--batch", "0"]) == 2
        assert "--batch" in capsys.readouterr().err

    def test_serve_resume_requires_checkpoint_dir(self, capsys):
        assert main(["serve", "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_checkpoint_every_requires_checkpoint_dir(self, capsys):
        assert main(["serve", "--checkpoint-every", "100"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err


class TestDurableCli:
    def test_serve_checkpoint_then_restore(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        assert main([
            "serve", "-k", "4", "-n", "3000", "--batch", "512",
            "--job", "t=count/randomized:0.05",
            "--checkpoint-dir", ckpt, "--checkpoint-every", "1000",
        ]) == 0
        serve_out = capsys.readouterr().out
        assert main(["restore", "--checkpoint-dir", ckpt]) == 0
        restore_out = capsys.readouterr().out
        assert "restored service" in restore_out
        assert "n=3,000" in restore_out
        # The recovered table reports the same ledger as the live run.
        serve_row = next(l for l in serve_out.splitlines() if " t " in l or l.strip().startswith("t "))
        restore_row = next(l for l in restore_out.splitlines() if l.strip().startswith("t "))
        assert serve_row.split("|")[2:] == restore_row.split("|")[2:]

    def test_serve_resume_matches_single_run(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        job = "t=count/randomized:0.05"
        # Interrupted: first 2000 events, then resume to 5000.
        assert main(["serve", "-k", "4", "-n", "2000", "--batch", "512",
                     "--job", job, "--checkpoint-dir", ckpt]) == 0
        capsys.readouterr()
        assert main(["serve", "-k", "4", "-n", "5000", "--batch", "512",
                     "--job", job, "--checkpoint-dir", ckpt, "--resume"]) == 0
        resumed_out = capsys.readouterr().out
        assert "(resumed past 2,000)" in resumed_out
        # Uninterrupted reference run.
        assert main(["serve", "-k", "4", "-n", "5000", "--batch", "512",
                     "--job", job]) == 0
        straight_out = capsys.readouterr().out
        resumed_row = next(
            l for l in resumed_out.splitlines() if l.strip().startswith("t ")
        )
        straight_row = next(
            l for l in straight_out.splitlines() if l.strip().startswith("t ")
        )
        assert resumed_row == straight_row

    def test_resume_ignores_mismatched_seed_and_k_flags(self, tmp_path, capsys):
        # The stream is regenerated from the snapshot's seed/fleet size,
        # so resuming without the original --seed/-k must still
        # reproduce the uninterrupted run exactly.
        ckpt = str(tmp_path / "ckpt")
        job = "t=count/randomized:0.05"
        assert main(["serve", "-k", "4", "-n", "2000", "--seed", "42",
                     "--batch", "512", "--job", job,
                     "--checkpoint-dir", ckpt]) == 0
        capsys.readouterr()
        # Resume with default seed/k flags (forgotten on the CLI).
        assert main(["serve", "-n", "5000", "--batch", "512",
                     "--checkpoint-dir", ckpt, "--resume"]) == 0
        resumed_out = capsys.readouterr().out
        assert main(["serve", "-k", "4", "-n", "5000", "--seed", "42",
                     "--batch", "512", "--job", job]) == 0
        straight_out = capsys.readouterr().out
        resumed_row = next(
            l for l in resumed_out.splitlines() if l.strip().startswith("t ")
        )
        straight_row = next(
            l for l in straight_out.splitlines() if l.strip().startswith("t ")
        )
        assert resumed_row == straight_row

    def test_restore_missing_dir_fails_cleanly(self, tmp_path, capsys):
        assert main(["restore", "--checkpoint-dir", str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err

    def test_resume_spec_clash_keeps_restored_scheme(self, tmp_path, capsys):
        # A --job spec whose name collides with a restored job must not
        # change that job's problem family (the status table would
        # otherwise dispatch the wrong query).
        ckpt = str(tmp_path / "ckpt")
        assert main(["serve", "-k", "4", "-n", "1000", "--batch", "512",
                     "--job", "c=count/randomized:0.05",
                     "--checkpoint-dir", ckpt]) == 0
        capsys.readouterr()
        assert main(["serve", "-n", "2000", "--batch", "512",
                     "--job", "c=rank/randomized:0.05",
                     "--checkpoint-dir", ckpt, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "count/randomized" in out  # restored scheme won
