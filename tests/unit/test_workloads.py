"""Unit tests for workload generators."""

from collections import Counter

import pytest

from repro.workloads import (
    bursty_sites,
    gaussian_values,
    random_permutation_values,
    round_robin,
    single_site,
    skewed_sites,
    sorted_values,
    theorem22_distribution,
    theorem24_stream,
    uniform_sites,
    with_items,
    zipf_items,
)


class TestArrivalPatterns:
    def test_round_robin_cycles(self):
        events = list(round_robin(10, 3))
        assert [s for s, _ in events] == [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]

    def test_round_robin_item_payload(self):
        events = list(round_robin(3, 2, item="x"))
        assert all(i == "x" for _, i in events)

    def test_uniform_sites_covers_all(self):
        sites = Counter(s for s, _ in uniform_sites(5_000, 8, seed=1))
        assert set(sites) == set(range(8))
        assert max(sites.values()) < 2 * min(sites.values())

    def test_uniform_sites_reproducible(self):
        a = list(uniform_sites(100, 5, seed=7))
        b = list(uniform_sites(100, 5, seed=7))
        assert a == b

    def test_single_site_validates(self):
        with pytest.raises(ValueError):
            list(single_site(10, 3, site_id=5))

    def test_single_site_targets(self):
        events = list(single_site(10, 3, site_id=2))
        assert all(s == 2 for s, _ in events)

    def test_skewed_sites_skews(self):
        counts = Counter(s for s, _ in skewed_sites(20_000, 10, alpha=1.5, seed=2))
        assert counts[0] > counts[9] * 3

    def test_bursty_sites_runs_in_bursts(self):
        events = [s for s, _ in bursty_sites(1_000, 5, burst=100, seed=3)]
        # Within each aligned 100-block the site is constant.
        for start in range(0, 1_000, 100):
            assert len(set(events[start : start + 100])) == 1

    def test_bursty_sites_total(self):
        assert len(list(bursty_sites(250, 4, burst=100, seed=1))) == 250

    def test_with_items_replaces_payload(self):
        events = list(with_items(round_robin(5, 2), lambda t: t * 10))
        assert [i for _, i in events] == [0, 10, 20, 30, 40]


class TestItemLaws:
    def test_zipf_validates(self):
        with pytest.raises(ValueError):
            zipf_items(0)

    def test_zipf_head_heaviest(self):
        source = zipf_items(100, alpha=1.3, seed=4)
        counts = Counter(source(t) for t in range(20_000))
        assert counts[0] == max(counts.values())
        assert counts[0] > counts.get(50, 0) * 5

    def test_zipf_within_universe(self):
        source = zipf_items(10, seed=5)
        assert all(0 <= source(t) < 10 for t in range(1_000))

    def test_uniform_items_flat(self):
        from repro.workloads import uniform_items

        source = uniform_items(10, seed=6)
        counts = Counter(source(t) for t in range(20_000))
        assert max(counts.values()) < 1.3 * min(counts.values())

    def test_random_permutation_is_permutation(self):
        values = random_permutation_values(1000, seed=7)
        assert sorted(values) == list(range(1000))

    def test_sorted_values(self):
        assert sorted_values(5) == [0, 1, 2, 3, 4]
        assert sorted_values(5, descending=True) == [4, 3, 2, 1, 0]

    def test_gaussian_values_reproducible(self):
        a = gaussian_values(50, seed=8)
        b = gaussian_values(50, seed=8)
        assert a == b
        assert len(a) == 50


class TestAdversarial:
    def test_theorem22_case_split(self):
        # Over many draws, roughly half are single-site (case a).
        single = 0
        draws = 200
        for seed in range(draws):
            sites = {s for s, _ in theorem22_distribution(60, 6, seed=seed)}
            single += len(sites) == 1
        assert 0.35 < single / draws < 0.65

    def test_theorem22_round_robin_case(self):
        # Find a round-robin draw and check structure.
        for seed in range(50):
            events = list(theorem22_distribution(12, 4, seed=seed))
            sites = [s for s, _ in events]
            if len(set(sites)) > 1:
                assert sites == [t % 4 for t in range(12)]
                return
        pytest.fail("no case-(b) draw found")

    def test_theorem24_structure(self):
        k, eps, rounds = 16, 0.1, 3
        stream, history = theorem24_stream(k, eps, rounds, seed=1)
        subrounds = max(1, int(1 / (2 * eps * 4)))
        assert len(history) == rounds * subrounds
        for i, j, s in history:
            assert s in (k // 2 + 4, k // 2 - 4)
        # Elements per subround match s * 2^i.
        total = sum(s * (1 << i) for i, _, s in history)
        assert len(stream) == total

    def test_theorem24_requires_k4(self):
        with pytest.raises(ValueError):
            theorem24_stream(2, 0.1, 1)
