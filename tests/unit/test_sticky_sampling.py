"""Unit tests for the sticky sampler (Manku–Motwani counter list)."""

import pytest

from repro.runtime.rng import derive_rng
from repro.sketch import StickySampler


class TestBasics:
    def test_rejects_bad_p(self):
        rng = derive_rng(0, "ss")
        with pytest.raises(ValueError):
            StickySampler(0.0, rng)
        with pytest.raises(ValueError):
            StickySampler(1.5, rng)

    def test_p_one_counts_exactly(self):
        s = StickySampler(1.0, derive_rng(0, "ss1"))
        for item in "aabab":
            s.add(item)
        assert s.count("a") == 3
        assert s.count("b") == 2
        assert s.count("z") == 0

    def test_created_flag(self):
        s = StickySampler(1.0, derive_rng(0, "ss2"))
        created, count = s.add("x")
        assert created and count == 1
        created, count = s.add("x")
        assert not created and count == 2

    def test_existing_counter_always_increments(self):
        s = StickySampler(0.01, derive_rng(0, "ss3"))
        s.counters["x"] = 1  # force-track
        for _ in range(50):
            s.add("x")
        assert s.count("x") == 51

    def test_clear(self):
        s = StickySampler(1.0, derive_rng(0, "ss4"))
        s.add("a")
        s.clear()
        assert s.count("a") == 0
        assert s.n == 0


class TestSamplingBehaviour:
    def test_expected_counter_count(self):
        # All-distinct stream: each item creates a counter with prob p,
        # so E[#counters] = p * n.
        p, n = 0.05, 10_000
        s = StickySampler(p, derive_rng(0, "ss5"))
        for i in range(n):
            s.add(i)
        expected = p * n
        assert 0.6 * expected <= len(s.counters) <= 1.5 * expected

    def test_count_undershoots_by_geometric_misses(self):
        # For a single hot item, count = f - (misses before creation);
        # misses ~ Geometric(p), so f - count has mean about (1-p)/p.
        p, f, trials = 0.2, 500, 300
        total_gap = 0
        for t in range(trials):
            s = StickySampler(p, derive_rng(t, "ss6"))
            for _ in range(f):
                s.add("hot")
            assert s.count("hot") <= f
            total_gap += f - s.count("hot")
        mean_gap = total_gap / trials
        assert abs(mean_gap - (1 - p) / p) < 1.0

    def test_space_words(self):
        s = StickySampler(1.0, derive_rng(0, "ss7"))
        s.add("a")
        s.add("b")
        assert s.space_words() == 2 * 2 + 2
