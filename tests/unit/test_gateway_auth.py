"""Gateway auth: Bearer keys, 401/403 paths, per-key rate buckets."""

import json
import urllib.error
import urllib.request

import pytest

from repro import TrackingService
from repro.net.gateway import Gateway, GatewayThread

KEYS = {"key-alpha": "tenant-alpha", "key-beta": "tenant-beta"}


def call(url, path, obj=None, key=None, method=None, raw_auth=None):
    data = None if obj is None else json.dumps(obj).encode()
    headers = {"Content-Type": "application/json"}
    if raw_auth is not None:
        headers["Authorization"] = raw_auth
    elif key is not None:
        headers["Authorization"] = f"Bearer {key}"
    request = urllib.request.Request(
        url + path, data=data, headers=headers, method=method
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.load(response)


def status_of(exc: urllib.error.HTTPError):
    payload = json.loads(exc.read())
    return exc.code, payload


@pytest.fixture()
def gateway():
    service = TrackingService(num_sites=4, seed=1)
    with GatewayThread(service, api_keys=dict(KEYS)) as gw:
        yield gw
    service.close()


class TestAuthPaths:
    def test_healthz_stays_open(self, gateway):
        status, payload = call(gateway.url, "/healthz")
        assert status == 200
        assert payload["auth"] == {
            "enabled": True, "keys": 2, "rejected_401": 0, "rejected_403": 0,
        }

    def test_missing_header_is_401(self, gateway):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            call(gateway.url, "/v1/status")
        code, payload = status_of(excinfo.value)
        assert code == 401
        assert "Authorization" in payload["error"]
        assert excinfo.value.headers["WWW-Authenticate"] == "Bearer"

    def test_malformed_header_is_401(self, gateway):
        # wrong scheme, empty token, bare token without a scheme
        for bad in ("Basic key-alpha", "Bearer ", "key-alpha"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                call(gateway.url, "/v1/status", raw_auth=bad)
            assert excinfo.value.code == 401, bad

    def test_unknown_key_is_403(self, gateway):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            call(gateway.url, "/v1/status", key="who-dis")
        code, payload = status_of(excinfo.value)
        assert code == 403
        assert "unknown API key" in payload["error"]

    def test_valid_key_full_surface(self, gateway):
        status, _ = call(
            gateway.url, "/v1/jobs",
            {"name": "t", "spec": "count/deterministic:0.05"},
            key="key-alpha",
        )
        assert status == 200
        status, payload = call(
            gateway.url, "/v1/ingest", {"site_ids": [0, 1, 2, 3]},
            key="key-beta",  # any valid tenant reaches the shared jobs
        )
        assert status == 200 and payload["ingested"] == 4
        status, payload = call(
            gateway.url, "/v1/query", {"job": "t"}, key="key-alpha"
        )
        assert status == 200 and payload["result"] == 4.0

    def test_rejection_counters_in_healthz(self, gateway):
        for _ in range(2):
            with pytest.raises(urllib.error.HTTPError):
                call(gateway.url, "/v1/status")
        with pytest.raises(urllib.error.HTTPError):
            call(gateway.url, "/v1/status", key="nope")
        _, payload = call(gateway.url, "/healthz")
        assert payload["auth"]["rejected_401"] == 2
        assert payload["auth"]["rejected_403"] == 1


class TestPerKeyBuckets:
    def test_one_tenant_cannot_starve_another(self):
        service = TrackingService(num_sites=4, seed=1)
        with GatewayThread(
            service,
            api_keys=dict(KEYS),
            max_ingest_rate=1.0,   # refill is negligible within the test
            ingest_burst=100,
        ) as gw:
            batch = {"site_ids": [0, 1] * 50}  # exactly one full burst
            status, _ = call(gw.url, "/v1/ingest", batch, key="key-alpha")
            assert status == 200
            # alpha's bucket is empty now -> 429 with Retry-After
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                call(gw.url, "/v1/ingest", batch, key="key-alpha")
            code, payload = status_of(excinfo.value)
            assert code == 429
            assert "for this API key" in payload["error"]
            assert int(excinfo.value.headers["Retry-After"]) >= 1
            # beta's bucket is untouched: same-sized batch sails through
            status, _ = call(gw.url, "/v1/ingest", batch, key="key-beta")
            assert status == 200
        service.close()

    def test_gateway_wide_bucket_without_auth(self):
        service = TrackingService(num_sites=4, seed=1)
        with GatewayThread(
            service, max_ingest_rate=1.0, ingest_burst=10
        ) as gw:
            status, _ = call(gw.url, "/v1/ingest", {"site_ids": [0] * 10})
            assert status == 200
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                call(gw.url, "/v1/ingest", {"site_ids": [0] * 10})
            assert excinfo.value.code == 429
        service.close()


class TestQueryCliClient:
    """`repro query`: --timeout, --api-key, clean connection errors."""

    def test_api_key_reaches_authed_gateway(self, gateway, capsys):
        from repro.cli import run_query

        call(
            gateway.url, "/v1/jobs",
            {"name": "t", "spec": "count/deterministic:0.05"},
            key="key-alpha",
        )
        rc = run_query([gateway.url, "t", "--api-key", "key-alpha",
                        "--timeout", "15"])
        assert rc == 0
        assert '"result": 0.0' in capsys.readouterr().out

    def test_missing_key_is_reported_not_raised(self, gateway, capsys):
        from repro.cli import run_query

        rc = run_query([gateway.url, "t"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "HTTP 401" in err and "Authorization" in err

    def test_connection_refused_is_one_clean_line(self, capsys):
        import socket

        from repro.cli import run_query

        # bind-then-close guarantees a dead port
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        rc = run_query([f"http://127.0.0.1:{port}", "job", "--timeout", "5"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "connection refused" in err
        assert "is the gateway running" in err
        assert "Traceback" not in err

    def test_timeout_flag_validated(self, capsys):
        from repro.cli import run_query

        rc = run_query(["http://127.0.0.1:1", "job", "--timeout", "0"])
        assert rc == 2
        assert "--timeout must be positive" in capsys.readouterr().err


class TestValidation:
    def test_empty_or_malformed_key_maps_rejected(self):
        service = TrackingService(num_sites=2, seed=0)
        try:
            for bad in ({}, {"": "t"}, {"k": 7}, ["k"]):
                with pytest.raises(ValueError):
                    Gateway(service, api_keys=bad)
        finally:
            service.close()
