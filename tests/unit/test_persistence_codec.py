"""Unit tests for the snapshot codec (encode/decode/merge semantics)."""

import json
import random

import pytest

from repro.persistence.codec import (
    StateCodecError,
    StateDecoder,
    StateEncoder,
    decode_value,
    encode_value,
    load_object_state,
    object_state,
)
from repro.runtime.rng import derive_rng
from repro.sketch.exponential_histogram import ExponentialHistogram
from repro.sketch.gk import GKSummary
from repro.sketch.mergeable_quantile import QuantileSketchBuilder
from repro.sketch.misra_gries import MisraGries
from repro.sketch.reservoir import ReservoirSampler
from repro.sketch.space_saving import SpaceSaving
from repro.sketch.sticky_sampling import StickySampler


def roundtrip(value):
    """Encode, force through JSON, decode."""
    return decode_value(json.loads(json.dumps(encode_value(value))))


class TestValueRoundtrip:
    def test_scalars(self):
        for value in (None, True, False, 0, -7, 2**80, "x", 1.5, -0.0):
            assert roundtrip(value) == value
            assert type(roundtrip(value)) is type(value)

    def test_non_finite_floats(self):
        assert roundtrip(float("inf")) == float("inf")
        assert roundtrip(float("-inf")) == float("-inf")
        assert roundtrip(float("nan")) != roundtrip(float("nan"))  # nan

    def test_containers(self):
        value = {
            (3, "a"): [1, 2, (4, 5)],
            7: {"nested": {0: 1.25}},
            "plain": None,
        }
        out = roundtrip(value)
        assert out == value
        assert isinstance(list(out)[0], tuple)

    def test_dict_insertion_order_preserved(self):
        value = {"b": 1, "a": 2, "c": 3}
        assert list(roundtrip(value)) == ["b", "a", "c"]

    def test_tuple_keys_stay_hashable(self):
        out = roundtrip({("t0", 42): 1})
        assert out[("t0", 42)] == 1

    def test_rng_stream_continues_identically(self):
        rng = derive_rng(7, "codec-test")
        rng.random()  # advance past the seed state
        twin = roundtrip(rng)
        assert [twin.random() for _ in range(5)] == [
            rng.random() for _ in range(5)
        ]

    def test_unencodable_type_raises(self):
        with pytest.raises(StateCodecError):
            encode_value(object())


class TestSharedReferences:
    def test_shared_rng_alias_survives(self):
        rng = random.Random(3)
        out = roundtrip([rng, rng])
        assert out[0] is out[1]
        assert out[0].random() == random.Random(3).random()

    def test_shared_object_alias_survives(self):
        mg = MisraGries(4)
        mg.add("a")
        out = roundtrip({"x": mg, "y": mg})
        assert out["x"] is out["y"]
        assert out["x"].counters == {"a": 1}

    def test_merge_resolves_ref_to_live_target(self):
        # A site-like object sharing its rng with a nested helper must
        # keep the aliasing when merged into fresh instances.
        sampler = StickySampler(1.0, random.Random(5))
        blob = json.loads(json.dumps(encode_value([sampler, sampler.rng])))
        fresh = StickySampler(1.0, random.Random(0))
        merged = StateDecoder().merge([fresh, fresh.rng], blob)
        assert merged[0] is fresh
        assert merged[1] is fresh.rng  # ref resolved to the merged target


SKETCHES = [
    ("misra-gries", lambda: MisraGries(5), lambda s: [s.add(x) for x in "abcabca"]),
    ("space-saving", lambda: SpaceSaving(4), lambda s: [s.add(x) for x in "abcdeab"]),
    ("gk", lambda: GKSummary(0.1), lambda s: [s.add(i % 17) for i in range(200)]),
    (
        "eh",
        lambda: ExponentialHistogram(50, 0.25),
        lambda s: [s.add(t) for t in range(0, 120, 3)],
    ),
    (
        "reservoir",
        lambda: ReservoirSampler(8, random.Random(2)),
        lambda s: [s.add(i) for i in range(100)],
    ),
    (
        "sticky",
        lambda: StickySampler(0.5, random.Random(2)),
        lambda s: [s.add(i % 9) for i in range(50)],
    ),
    (
        "quantile-builder",
        lambda: QuantileSketchBuilder(8, random.Random(4)),
        lambda s: [s.add(i * 31 % 257) for i in range(300)],
    ),
]


class TestSketchHooks:
    @pytest.mark.parametrize(
        "factory,feed",
        [(f, feed) for _, f, feed in SKETCHES],
        ids=[name for name, _, _ in SKETCHES],
    )
    def test_state_dict_roundtrip_is_deep_equal(self, factory, feed):
        sketch = factory()
        feed(sketch)
        state = json.loads(json.dumps(sketch.state_dict()))
        twin = factory()
        twin.load_state_dict(state)
        # Deep equality of the re-encoded state is the strongest check:
        # every counter, buffer and RNG word survived the round trip.
        assert twin.state_dict() == sketch.state_dict()

    def test_gk_restored_answers_identical_queries(self):
        gk = GKSummary(0.05)
        for i in range(500):
            gk.add((i * 7919) % 1000)
        twin = GKSummary(0.05)
        twin.load_state_dict(gk.state_dict())
        assert twin.values == gk.values
        assert twin.g == gk.g
        assert twin.delta == gk.delta
        assert twin.n == gk.n

    def test_load_rejects_wrong_type(self):
        mg = MisraGries(4)
        with pytest.raises(StateCodecError):
            load_object_state(SpaceSaving(4), mg.state_dict())

    def test_refuses_non_repro_types_on_decode(self):
        blob = {"__obj__": "os.path:join", "id": 0, "state": {}}
        with pytest.raises(StateCodecError):
            decode_value(blob)


class TestObjectState:
    def test_transient_attrs_are_excluded(self):
        from repro.runtime import Network
        from repro.core.count.deterministic import DeterministicCountSite

        network = Network(2)
        site = DeterministicCountSite(0, network, 0.1)
        state = object_state(site)
        assert "network" not in state["state"]

    def test_network_state_keeps_ledger_and_drop_rng(self):
        from repro.runtime import Network
        from repro.runtime.protocol import Message

        class _Sink:
            def on_message(self, site_id, message):
                pass

        network = Network(2, uplink_drop_rate=0.5, drop_seed=11)
        network.bind(_Sink(), [_stub_site(network, 0), _stub_site(network, 1)])
        for _ in range(50):
            network.send_to_coordinator(0, Message("m", None, 1))
        twin = Network(2, uplink_drop_rate=0.5, drop_seed=11)
        twin.bind(_Sink(), [_stub_site(twin, 0), _stub_site(twin, 1)])
        twin.load_state_dict(json.loads(json.dumps(network.state_dict())))
        assert twin.stats.snapshot() == network.stats.snapshot()
        assert twin.dropped_uplink_messages == network.dropped_uplink_messages
        # Future drop decisions continue the same stream.
        for _ in range(50):
            network.send_to_coordinator(0, Message("m", None, 1))
            twin.send_to_coordinator(0, Message("m", None, 1))
        assert twin.dropped_uplink_messages == network.dropped_uplink_messages


def _stub_site(network, site_id):
    from repro.runtime import Site

    class _StubSite(Site):
        def on_element(self, item):
            pass

        def space_words(self):
            return 0

    return _StubSite(site_id, network)
