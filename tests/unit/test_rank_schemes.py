"""Unit tests for the rank-tracking protocols (Section 4)."""

import math
import statistics

import pytest

from repro import (
    Cormode05RankScheme,
    DeterministicRankScheme,
    RandomizedRankScheme,
    Simulation,
)
from repro.core.rank.randomized import RoundGeometry
from repro.workloads import random_permutation_values, sorted_values

from ..conftest import run_rank, true_rank


class TestRoundGeometry:
    def test_block_is_power_of_two(self):
        g = RoundGeometry(50_000, k=16, eps=0.05)
        assert g.block & (g.block - 1) == 0

    def test_block_tracks_formula(self):
        k, eps, n_bar = 16, 0.05, 50_000
        g = RoundGeometry(n_bar, k, eps)
        raw = eps * n_bar / math.sqrt(k)
        assert raw <= g.block < 2 * raw

    def test_chunk_covers_n_bar_over_k(self):
        g = RoundGeometry(50_000, k=16, eps=0.05)
        assert g.chunk >= 50_000 // 16

    def test_tree_height_consistent(self):
        g = RoundGeometry(100_000, k=16, eps=0.01)
        assert g.blocks_per_chunk == 1 << g.height
        assert g.chunk == g.blocks_per_chunk * g.block

    def test_sampling_probability(self):
        g = RoundGeometry(80_000, k=16, eps=0.05)
        assert g.p == pytest.approx(math.sqrt(16) / (0.05 * 80_000))

    def test_tiny_n_bar_degenerates(self):
        g = RoundGeometry(1, k=16, eps=0.05)
        assert g.block == 1
        assert g.p == 1.0

    def test_node_elements(self):
        g = RoundGeometry(50_000, k=16, eps=0.05)
        assert g.node_elements(0) == g.block
        assert g.node_elements(2) == 4 * g.block

    def test_flat_mode_single_level(self):
        g = RoundGeometry(50_000, k=16, eps=0.05, flat=True)
        assert g.height == 0


class TestRandomizedRank:
    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            RandomizedRankScheme(0.0)

    def test_rank_accuracy_random_order(self):
        eps, n, k = 0.05, 40_000, 16
        values = random_permutation_values(n, seed=3)
        sim, svals = run_rank(RandomizedRankScheme(eps), values, k)
        for q in range(0, n, n // 10):
            err = abs(sim.coordinator.estimate_rank(q) - true_rank(svals, q))
            assert err <= 3 * eps * n

    def test_rank_accuracy_sorted_order(self):
        eps, n, k = 0.05, 30_000, 16
        sim, svals = run_rank(RandomizedRankScheme(eps), sorted_values(n), k)
        for q in range(0, n, n // 10):
            err = abs(sim.coordinator.estimate_rank(q) - true_rank(svals, q))
            assert err <= 3 * eps * n

    def test_estimate_total_close(self):
        eps, n, k = 0.05, 30_000, 16
        values = random_permutation_values(n, seed=4)
        sim, _ = run_rank(RandomizedRankScheme(eps), values, k)
        assert abs(sim.coordinator.estimate_total() - n) <= 3 * eps * n

    def test_quantile_query(self):
        eps, n, k = 0.05, 30_000, 16
        values = random_permutation_values(n, seed=5)
        sim, _ = run_rank(RandomizedRankScheme(eps), values, k)
        for phi in (0.25, 0.5, 0.9):
            q = sim.coordinator.quantile(phi)
            # Values are 0..n-1 so value == its rank.
            assert abs(q - phi * n) <= 4 * eps * n

    def test_rank_unbiased_across_seeds(self):
        eps, n, k, runs = 0.1, 8_000, 9, 30
        values = random_permutation_values(n, seed=6)
        x = n // 3
        estimates = []
        for seed in range(runs):
            sim, svals = run_rank(
                RandomizedRankScheme(eps), values, k, seed=seed, stream_seed=7
            )
            estimates.append(sim.coordinator.estimate_rank(x))
        mean = statistics.mean(estimates)
        sem = statistics.stdev(estimates) / math.sqrt(runs)
        assert abs(mean - x) <= 4 * sem + 0.02 * n

    def test_site_space_modest(self):
        eps, n, k = 0.05, 50_000, 16
        values = random_permutation_values(n, seed=8)
        sim, _ = run_rank(RandomizedRankScheme(eps), values, k)
        # Theory space/site is ~1/(eps sqrt(k)) * polylog = tens of words.
        assert sim.space.max_site_words < 1000

    def test_canonical_decomposition_compact(self):
        eps, n, k = 0.05, 50_000, 16
        values = random_permutation_values(n, seed=9)
        sim, _ = run_rank(RandomizedRankScheme(eps), values, k)
        coord = sim.coordinator
        for (rnd, site, chunk), chunk_summaries in coord.chunks.items():
            geometry_height_bound = 20
            assert len(chunk_summaries.nodes) <= geometry_height_bound

    def test_flat_tree_ablation_blows_up_coordinator_state(self):
        # Ablation (DESIGN.md #5): without the binary tree there is no
        # canonical decomposition — the coordinator must retain every
        # leaf block of a chunk (B of them) instead of <= h+1 maximal
        # nodes, so its per-chunk state and per-query work grow by
        # ~B/log B.  (At laptop scale the designed variance penalty is
        # masked by the minimum buffer size, so state is the observable.)
        eps, n, k = 0.02, 30_000, 16
        values = random_permutation_values(n, seed=10)

        def max_nodes_per_chunk(scheme):
            sim, svals = run_rank(scheme, values, k, seed=1, stream_seed=11)
            x = n // 2
            assert abs(
                sim.coordinator.estimate_rank(x) - true_rank(svals, x)
            ) <= 3 * eps * n
            geometry = sim.coordinator.geometry
            full = [
                len(c.nodes)
                for c in sim.coordinator.chunks.values()
            ]
            return max(full), geometry

        tree_nodes, tree_geometry = max_nodes_per_chunk(RandomizedRankScheme(eps))
        flat_nodes, flat_geometry = max_nodes_per_chunk(
            RandomizedRankScheme(eps, flat_tree=True)
        )
        assert tree_nodes <= tree_geometry.height + 1
        assert flat_nodes > tree_nodes


class TestDeterministicRankBaselines:
    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            DeterministicRankScheme(0.0)
        with pytest.raises(ValueError):
            Cormode05RankScheme(0.0)

    @pytest.mark.parametrize("scheme_cls", [DeterministicRankScheme, Cormode05RankScheme])
    def test_rank_accuracy(self, scheme_cls):
        eps, n, k = 0.05, 20_000, 9
        values = random_permutation_values(n, seed=12)
        sim, svals = run_rank(scheme_cls(eps), values, k)
        for q in range(0, n, n // 10):
            err = abs(sim.coordinator.estimate_rank(q) - true_rank(svals, q))
            assert err <= 2 * eps * n

    def test_quantile_query(self):
        eps, n, k = 0.05, 20_000, 9
        values = random_permutation_values(n, seed=13)
        sim, _ = run_rank(DeterministicRankScheme(eps), values, k)
        q = sim.coordinator.quantile(0.5)
        assert abs(q - 0.5 * n) <= 3 * eps * n

    def test_randomized_cheaper_in_words(self):
        eps, n, k = 0.05, 40_000, 16
        values = random_permutation_values(n, seed=14)
        rand, _ = run_rank(RandomizedRankScheme(eps), values, k)
        det, _ = run_rank(DeterministicRankScheme(eps), values, k)
        assert rand.comm.total_words < det.comm.total_words / 4

    def test_snapshot_total_estimate(self):
        eps, n, k = 0.05, 20_000, 9
        values = random_permutation_values(n, seed=15)
        sim, _ = run_rank(DeterministicRankScheme(eps), values, k)
        total = sim.coordinator.estimate_total()
        # Snapshots lag by at most Delta per site.
        assert n - total <= n * eps + k
