"""FleetMonitor liveness state machine + hub_stats command contract.

The monitor runs with an injected clock and hand-built poll callables,
so every staleness edge and hysteresis episode is deterministic — no
threads, no sleeps.  The ``hub_stats`` tests pin the command's shape
across in-process and subprocess placements (the cluster placement is
covered by the remote-hub integration suite).
"""

import pytest

from repro.exec import make_backend
from repro.exec.workers import hub_spec
from repro.obs import MetricsRegistry, render_prometheus
from repro.obs.fleet import FleetMonitor, FleetTarget


class Clock:
    """A manual monotonic clock the poll callables may advance."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class Hub:
    """A scriptable hub: per-poll behavior from a list of directives.

    Each directive is ``("ok", rtt)`` or ``("fail", rtt)``; the last
    one repeats forever.
    """

    def __init__(self, clock, script):
        self.clock = clock
        self.script = list(script)
        self.heartbeat = 0

    def poll(self):
        directive = self.script.pop(0) if len(self.script) > 1 else self.script[0]
        kind, rtt = directive
        self.clock.t += rtt
        if kind == "fail":
            raise ConnectionError("hub unreachable")
        self.heartbeat += 1
        return {
            "heartbeat": self.heartbeat,
            "elements": 10 * self.heartbeat,
            "rounds": self.heartbeat,
            "jobs": {},
            "capacity": {
                "used_words": 50, "budget_words": 100, "ratio": 0.5,
            },
            "process": {"rss_bytes": 1, "open_fds": 2, "uptime_s": 3.0},
        }


def monitor_for(clock, hubs, **kwargs):
    kwargs.setdefault("interval", 1.0)
    kwargs.setdefault("stale_after", 0.5)
    targets = [
        FleetTarget(str(i), hub.poll) for i, hub in enumerate(hubs)
    ]
    return FleetMonitor(targets, clock=clock, **kwargs)


def events_of(monitor, hub="0"):
    return [e["event"] for e in monitor.events() if e["hub"] == hub]


class TestLiveness:
    def test_first_heartbeat_joins_up(self):
        clock = Clock()
        monitor = monitor_for(clock, [Hub(clock, [("ok", 0.01)])])
        monitor.poll_round()
        snap = monitor.snapshot()
        assert snap["hubs"][0]["state"] == "up"
        assert snap["hubs"][0]["heartbeat"] == 1
        (event,) = monitor.events()
        assert event["event"] == "joined"
        assert event["from"] == "unknown" and event["state"] == "up"
        assert event["trace_id"]

    def test_staleness_threshold_edges(self):
        # a reply at exactly stale_after is fresh; epsilon over is stale
        clock = Clock()
        exact = Hub(clock, [("ok", 0.5)])
        over = Hub(clock, [("ok", 0.5 + 1e-9)])
        monitor = monitor_for(clock, [exact, over], stale_after=0.5)
        monitor.poll_round()
        monitor.poll_round()
        states = {h["hub"]: h["state"] for h in monitor.snapshot()["hubs"]}
        assert states == {"0": "up", "1": "degraded"}

    def test_slow_hub_degrades_but_never_goes_down(self):
        clock = Clock()
        slow = Hub(clock, [("ok", 0.9)])  # answers, slower than stale_after
        monitor = monitor_for(clock, [slow], down_failures=2)
        for _ in range(6):
            monitor.poll_round()
        hub = monitor.snapshot()["hubs"][0]
        assert hub["state"] == "degraded"
        assert hub["heartbeat"] == 6  # every poll was answered
        assert "down" not in events_of(monitor)

    def test_down_needs_consecutive_failures(self):
        clock = Clock()
        hub = Hub(clock, [("ok", 0.01), ("fail", 0.01), ("fail", 0.01)])
        monitor = monitor_for(clock, [hub], down_failures=2)
        monitor.poll_round()
        assert monitor.snapshot()["hubs"][0]["state"] == "up"
        monitor.poll_round()  # first failure: degraded, not down
        assert monitor.snapshot()["hubs"][0]["state"] == "degraded"
        monitor.poll_round()  # second consecutive failure: down
        assert monitor.snapshot()["hubs"][0]["state"] == "down"
        assert events_of(monitor) == ["joined", "degraded", "down"]

    def test_one_down_event_per_episode(self):
        clock = Clock()
        # up, then an outage that flaps: single successes never reach
        # recovery_polls, so the episode stays one "down" event
        script = [
            ("ok", 0.01),
            ("fail", 0.01), ("fail", 0.01), ("fail", 0.01),
            ("ok", 0.01), ("fail", 0.01),
            ("ok", 0.01), ("fail", 0.01),
            ("ok", 0.01), ("ok", 0.01),   # real recovery
            ("fail", 0.01), ("fail", 0.01),  # second episode
        ]
        hub = Hub(clock, script)
        monitor = monitor_for(
            clock, [hub], down_failures=2, recovery_polls=2
        )
        for _ in range(len(script)):
            monitor.poll_round()
        assert events_of(monitor) == [
            "joined", "degraded", "down", "recovered", "degraded", "down",
        ]

    def test_recovery_requires_consecutive_ok(self):
        clock = Clock()
        script = [
            ("fail", 0.01), ("fail", 0.01),  # never joined: down
            ("ok", 0.01),                    # one ok is not recovery
            ("ok", 0.01),                    # two is
        ]
        hub = Hub(clock, script)
        monitor = monitor_for(
            clock, [hub], down_failures=2, recovery_polls=2
        )
        monitor.poll_round()
        monitor.poll_round()
        assert monitor.snapshot()["hubs"][0]["state"] == "down"
        monitor.poll_round()
        assert monitor.snapshot()["hubs"][0]["state"] == "down"
        monitor.poll_round()
        assert monitor.snapshot()["hubs"][0]["state"] == "up"
        assert events_of(monitor)[-1] == "recovered"


class TestSurfaces:
    def test_rule_values(self):
        clock = Clock()
        ok = Hub(clock, [("ok", 0.01)])
        dead = Hub(clock, [("fail", 0.01)])
        monitor = monitor_for(clock, [ok, dead], down_failures=2)
        monitor.poll_round()
        monitor.poll_round()
        assert monitor.rule_value("hubs_up") == 1.0
        assert monitor.rule_value("hubs_down") == 1.0
        assert monitor.rule_value("hubs_degraded") == 0.0
        assert monitor.rule_value("capacity_ratio") == 0.5
        assert monitor.rule_value("heartbeat_age_seconds") >= 0.0
        with pytest.raises(ValueError):
            monitor.rule_value("no_such_metric")

    def test_snapshot_aggregates_capacity(self):
        clock = Clock()
        hubs = [Hub(clock, [("ok", 0.01)]) for _ in range(3)]
        monitor = monitor_for(clock, hubs)
        monitor.poll_round()
        snap = monitor.snapshot()
        assert snap["states"]["up"] == 3
        assert snap["capacity"] == {
            "used_words": 150, "budget_words": 300, "ratio": 0.5,
        }

    def test_events_ring_and_limit(self):
        clock = Clock()
        monitor = monitor_for(clock, [Hub(clock, [("ok", 0.01)])])
        monitor.poll_round()
        assert monitor.events(limit=0) == []
        assert len(monitor.events(limit=10)) == 1

    def test_register_metrics_exposes_fleet_families(self):
        clock = Clock()
        monitor = monitor_for(clock, [Hub(clock, [("ok", 0.01)])])
        registry = MetricsRegistry()
        monitor.register_metrics(registry)
        monitor.poll_round()
        text = render_prometheus(registry)
        families = {
            line.split()[2]
            for line in text.splitlines()
            if line.startswith("# TYPE repro_fleet_")
        }
        assert len(families) >= 5, sorted(families)
        assert 'repro_fleet_hub_state{hub="0"} 2' in text
        assert 'repro_fleet_hubs{state="up"} 1' in text
        assert 'repro_fleet_space_used_words{hub="0"} 50' in text

    def test_poll_events_carry_resolvable_trace(self):
        clock = Clock()
        monitor = monitor_for(clock, [Hub(clock, [("ok", 0.01)])])
        monitor.poll_round()
        (event,) = monitor.events()
        spans = [
            s for s in monitor.spans.dump()
            if s["trace_id"] == event["trace_id"]
        ]
        assert spans and spans[0]["name"] == "fleet_poll"


class TestHubStatsCommand:
    @pytest.mark.parametrize("executor", ["inline", "thread", "process"])
    def test_hub_stats_across_placements(self, executor):
        backend = make_backend(
            executor, hub_spec({"num_sites": 4, "seed": 7})
        )
        try:
            first = backend.dispatch_run("hub_stats")
            second = backend.dispatch_run("hub_stats")
            assert second["heartbeat"] == first["heartbeat"] + 1
            assert first["elements"] == 0
            assert first["capacity"]["used_words"] == 0
            assert first["capacity"]["budget_words"] is None
            process = first["process"]
            assert process["rss_bytes"] > 0 or executor == "inline"
            assert process["uptime_s"] >= 0.0
        finally:
            backend.close()
