"""Frame codec: partial reads, torn frames, oversized rejection, wire codec."""

import pytest

from repro.net.frames import (
    FrameDecoder,
    FrameError,
    FrameTooLargeError,
    TornFrameError,
    decode_json,
    encode_frame,
    encode_json_frame,
)
from repro.net.wire import (
    decode_chunk,
    decode_message,
    encode_chunk,
    encode_message,
)
from repro.runtime import Message


class TestFrameRoundTrip:
    def test_single_frame(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"hello")) == [b"hello"]
        assert decoder.pending_bytes == 0

    def test_empty_payload(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"")) == [b""]

    def test_many_frames_in_one_chunk(self):
        payloads = [b"a", b"bb" * 100, b"", b"xyz"]
        blob = b"".join(encode_frame(p) for p in payloads)
        assert FrameDecoder().feed(blob) == payloads

    def test_byte_by_byte_feed(self):
        payloads = [b"alpha", b"beta-gamma", b""]
        blob = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        for i in range(len(blob)):
            out.extend(decoder.feed(blob[i : i + 1]))
        assert out == payloads
        decoder.finish()  # clean boundary

    def test_split_inside_header(self):
        frame = encode_frame(b"payload")
        decoder = FrameDecoder()
        assert decoder.feed(frame[:2]) == []
        assert decoder.feed(frame[2:]) == [b"payload"]

    def test_split_inside_body(self):
        frame = encode_frame(b"0123456789")
        decoder = FrameDecoder()
        assert decoder.feed(frame[:7]) == []
        assert decoder.pending_bytes > 0
        assert decoder.feed(frame[7:]) == [b"0123456789"]


class TestFrameFailures:
    def test_oversized_encode_rejected(self):
        with pytest.raises(FrameTooLargeError):
            encode_frame(b"x" * 11, max_frame=10)

    def test_oversized_decode_rejected_before_buffering(self):
        frame = encode_frame(b"x" * 100)
        decoder = FrameDecoder(max_frame=10)
        # The header alone is enough to refuse; the body never arrives.
        with pytest.raises(FrameTooLargeError):
            decoder.feed(frame[:4])

    def test_torn_frame_mid_body(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(b"abcdef")[:6])
        with pytest.raises(TornFrameError):
            decoder.finish()

    def test_torn_frame_mid_header(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(b"abcdef")[:2])
        with pytest.raises(TornFrameError):
            decoder.finish()

    def test_clean_eof_passes(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(b"whole"))
        decoder.finish()

    def test_malformed_json_payload(self):
        with pytest.raises(FrameError):
            decode_json(b"{not json")


class TestJsonFrames:
    def test_round_trip(self):
        obj = {"t": "run", "items": [1, 2, 3], "nested": {"a": None}}
        frames = FrameDecoder().feed(encode_json_frame(obj))
        assert [decode_json(f) for f in frames] == [obj]


class TestWireCodec:
    def test_message_payload_tuples_survive(self):
        message = Message("summary", (3, 0, (1, 2), [4.5, "x"]), words=7)
        decoded = decode_message(encode_message(message))
        assert decoded == message
        assert isinstance(decoded.payload, tuple)
        assert isinstance(decoded.payload[2], tuple)

    def test_message_none_payload(self):
        assert decode_message(encode_message(Message("ping"))) == Message("ping")

    def test_chunk_int_fast_path(self):
        chunk = list(range(1000))
        encoded = encode_chunk(chunk)
        # all-int chunks take the WAL's packed-array representation
        assert isinstance(encoded["items"], (dict, list))
        assert decode_chunk(encoded) == chunk

    def test_chunk_rich_items(self):
        chunk = [(0, 5), (1, 7), "label", 2.5]
        decoded = decode_chunk(encode_chunk(chunk))
        assert decoded == chunk
        assert isinstance(decoded[0], tuple)

    def test_unit_chunk(self):
        chunk = [1] * 64
        assert decode_chunk(encode_chunk(chunk)) == chunk


class TestBinaryPayloads:
    def round_trip(self, obj):
        from repro.net.frames import decode_payload, encode_payload

        return decode_payload(encode_payload(obj))

    def test_plain_control_messages_stay_json(self):
        from repro.net.frames import encode_payload

        obj = {"t": "ack", "n": 3}
        payload = encode_payload(obj)
        assert payload[0:1] == b"{"  # no envelope, zero overhead
        assert self.round_trip(obj) == obj

    def test_long_int_list_packs_and_round_trips(self):
        from repro.net.frames import encode_payload

        values = list(range(100_000, 101_000))
        obj = {"t": "run", "chunk": {"items": values}}
        payload = encode_payload(obj)
        assert payload[0] == 0xF5
        assert self.round_trip(obj) == obj
        # raw i4 beats the ~7 bytes/int JSON rendering
        import json

        assert len(payload) < len(json.dumps(obj).encode()) * 0.7

    def test_float_lists_round_trip_bit_exact(self):
        values = [i * 0.1234567890123 for i in range(64)]
        decoded = self.round_trip({"xs": values})["xs"]
        assert decoded == values
        assert all(type(v) is float for v in decoded)

    def test_short_float_lists_stay_json(self):
        from repro.net.frames import encode_payload

        # "1.0"-style floats render at 4 bytes in JSON vs 8 raw; the
        # size gate must leave them unpacked (ints still win as u1)
        obj = {"b": [1.0] * 500}
        assert encode_payload(obj)[0:1] == b"{"
        assert self.round_trip(obj) == obj

    def test_single_digit_ints_pack_as_u1(self):
        from repro.net.frames import encode_payload

        obj = {"a": [1] * 500}
        assert encode_payload(obj)[0] == 0xF5  # u1 halves "1," JSON
        assert self.round_trip(obj) == obj

    def test_dtype_choice_follows_range(self):
        from repro.net.frames import _classify

        assert _classify(list(range(16))) == "u1"
        assert _classify([-5] + [300] * 20) == "i2"
        assert _classify([1 << 20] * 20) == "i4"
        assert _classify([1 << 40] * 20) == "i8"
        assert _classify([1 << 70] * 20) is None  # bigints stay JSON
        assert _classify([0.5] * 20) == "f8"
        assert _classify([1, 0.5] + [3] * 20) is None
        assert _classify([True] * 20) is None  # bools are not ints here

    def test_reserved_key_collision_is_escaped(self):
        obj = {"__wblob__": [0, "i8"], "__wesc__": {"x": 1},
               "data": list(range(1000, 1100))}
        assert self.round_trip(obj) == obj

    def test_mixed_and_nested_structures(self):
        obj = {
            "runs": [list(range(500, 600)), ["a", "b"], []],
            "summary": {"values": list(range(3000, 3100)),
                        "weights": [2.5] * 100},
            "none": None,
        }
        assert self.round_trip(obj) == obj

    def test_truncated_envelope_raises(self):
        from repro.net.frames import decode_payload, encode_payload

        payload = encode_payload({"xs": list(range(1000, 1100))})
        assert payload[0] == 0xF5
        with pytest.raises(FrameError):
            decode_payload(payload[:-3])
        with pytest.raises(FrameError):
            decode_payload(payload + b"\x00")

    def test_tcp_vs_json_transport_agree_on_rich_chunks(self):
        # tuples inside a coded chunk survive a JSON rendering (what the
        # TCP transport does), matching the loopback's object passing
        import json as _json

        chunk = [(0, 5), (1, 7), "label", 2.5]
        encoded = encode_chunk(chunk)
        over_json = _json.loads(_json.dumps(encoded))
        assert decode_chunk(over_json) == chunk
        assert isinstance(decode_chunk(over_json)[0], tuple)
