"""Frame codec: partial reads, torn frames, oversized rejection, wire codec."""

import pytest

from repro.net.frames import (
    FrameDecoder,
    FrameError,
    FrameTooLargeError,
    TornFrameError,
    decode_json,
    encode_frame,
    encode_json_frame,
)
from repro.net.wire import (
    decode_chunk,
    decode_message,
    encode_chunk,
    encode_message,
)
from repro.runtime import Message


class TestFrameRoundTrip:
    def test_single_frame(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"hello")) == [b"hello"]
        assert decoder.pending_bytes == 0

    def test_empty_payload(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"")) == [b""]

    def test_many_frames_in_one_chunk(self):
        payloads = [b"a", b"bb" * 100, b"", b"xyz"]
        blob = b"".join(encode_frame(p) for p in payloads)
        assert FrameDecoder().feed(blob) == payloads

    def test_byte_by_byte_feed(self):
        payloads = [b"alpha", b"beta-gamma", b""]
        blob = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        for i in range(len(blob)):
            out.extend(decoder.feed(blob[i : i + 1]))
        assert out == payloads
        decoder.finish()  # clean boundary

    def test_split_inside_header(self):
        frame = encode_frame(b"payload")
        decoder = FrameDecoder()
        assert decoder.feed(frame[:2]) == []
        assert decoder.feed(frame[2:]) == [b"payload"]

    def test_split_inside_body(self):
        frame = encode_frame(b"0123456789")
        decoder = FrameDecoder()
        assert decoder.feed(frame[:7]) == []
        assert decoder.pending_bytes > 0
        assert decoder.feed(frame[7:]) == [b"0123456789"]


class TestFrameFailures:
    def test_oversized_encode_rejected(self):
        with pytest.raises(FrameTooLargeError):
            encode_frame(b"x" * 11, max_frame=10)

    def test_oversized_decode_rejected_before_buffering(self):
        frame = encode_frame(b"x" * 100)
        decoder = FrameDecoder(max_frame=10)
        # The header alone is enough to refuse; the body never arrives.
        with pytest.raises(FrameTooLargeError):
            decoder.feed(frame[:4])

    def test_torn_frame_mid_body(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(b"abcdef")[:6])
        with pytest.raises(TornFrameError):
            decoder.finish()

    def test_torn_frame_mid_header(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(b"abcdef")[:2])
        with pytest.raises(TornFrameError):
            decoder.finish()

    def test_clean_eof_passes(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(b"whole"))
        decoder.finish()

    def test_malformed_json_payload(self):
        with pytest.raises(FrameError):
            decode_json(b"{not json")


class TestJsonFrames:
    def test_round_trip(self):
        obj = {"t": "run", "items": [1, 2, 3], "nested": {"a": None}}
        frames = FrameDecoder().feed(encode_json_frame(obj))
        assert [decode_json(f) for f in frames] == [obj]


class TestWireCodec:
    def test_message_payload_tuples_survive(self):
        message = Message("summary", (3, 0, (1, 2), [4.5, "x"]), words=7)
        decoded = decode_message(encode_message(message))
        assert decoded == message
        assert isinstance(decoded.payload, tuple)
        assert isinstance(decoded.payload[2], tuple)

    def test_message_none_payload(self):
        assert decode_message(encode_message(Message("ping"))) == Message("ping")

    def test_chunk_int_fast_path(self):
        chunk = list(range(1000))
        encoded = encode_chunk(chunk)
        # all-int chunks take the WAL's packed-array representation
        assert isinstance(encoded["items"], (dict, list))
        assert decode_chunk(encoded) == chunk

    def test_chunk_rich_items(self):
        chunk = [(0, 5), (1, 7), "label", 2.5]
        decoded = decode_chunk(encode_chunk(chunk))
        assert decoded == chunk
        assert isinstance(decoded[0], tuple)

    def test_unit_chunk(self):
        chunk = [1] * 64
        assert decode_chunk(encode_chunk(chunk)) == chunk
