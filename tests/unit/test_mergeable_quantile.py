"""Unit tests for the unbiased random-merge quantile summary."""

import math
import random
import statistics

import pytest

from repro.runtime.rng import derive_rng
from repro.sketch import QuantileSketchBuilder, QuantileSummary


class TestQuantileSummary:
    def test_rank_counts_weight_below(self):
        s = QuantileSummary([1, 3, 5], [2.0, 4.0, 8.0])
        assert s.rank(0) == 0
        assert s.rank(2) == 2.0
        assert s.rank(4) == 6.0
        assert s.rank(10) == 14.0

    def test_rank_strictly_below_semantics(self):
        s = QuantileSummary([5], [3.0])
        assert s.rank(5) == 0.0
        assert s.rank(5.0001) == 3.0

    def test_total_weight(self):
        s = QuantileSummary([1, 2], [1.5, 2.5])
        assert s.total_weight == 4.0

    def test_quantile(self):
        s = QuantileSummary(list(range(10)), [1.0] * 10)
        assert s.quantile(0.0) == 0
        assert s.quantile(0.45) == 4
        assert s.quantile(1.0) == 9

    def test_quantile_empty_raises(self):
        with pytest.raises(ValueError):
            QuantileSummary([], []).quantile(0.5)

    def test_size_words(self):
        s = QuantileSummary([1, 2, 3], [1, 1, 1])
        assert s.size_words() == 5


class TestBuilderExactSmall:
    def test_under_one_buffer_is_exact(self):
        b = QuantileSketchBuilder(100, derive_rng(0, "mq"))
        for v in [5, 1, 9, 3]:
            b.add(v)
        s = b.finalize()
        assert s.rank(4) == 2.0
        assert s.total_weight == 4.0

    def test_rejects_bad_buffer(self):
        with pytest.raises(ValueError):
            QuantileSketchBuilder(0, derive_rng(0, "mq"))

    def test_builder_rank_matches_finalized(self):
        b = QuantileSketchBuilder(8, derive_rng(0, "mq2"))
        for v in range(100):
            b.add(v)
        s = b.finalize()
        for q in [0, 25, 50, 99]:
            assert b.rank(q) == s.rank(q)


class TestBuilderWeights:
    def test_total_weight_preserved(self):
        # Weights always sum to n exactly, whatever the merge pattern.
        for m in [4, 7, 16]:
            b = QuantileSketchBuilder(m, derive_rng(m, "mq3"))
            n = 533
            for v in range(n):
                b.add(v)
            assert b.finalize().total_weight == n

    def test_power_of_two_consolidation(self):
        # n = m * 2^s leaves exactly one buffer => summary size ~ m.
        m, s = 16, 6
        b = QuantileSketchBuilder(m, derive_rng(0, "mq4"))
        for v in range(m << s):
            b.add(v)
        summary = b.finalize()
        assert len(summary) == m

    def test_space_words_bounded(self):
        m = 32
        b = QuantileSketchBuilder(m, derive_rng(0, "mq5"))
        for v in range(10_000):
            b.add(v)
        # At most one buffer per level plus the partial.
        levels = math.ceil(math.log2(10_000 / m)) + 1
        assert b.space_words() <= m * (levels + 1) + m + 3


class TestUnbiasedness:
    def test_rank_unbiased(self):
        # Mean over independent sketches approaches the true rank.
        n, m, trials = 1024, 8, 400
        values = list(range(n))
        x = 317  # true rank = 317
        estimates = []
        for t in range(trials):
            rng = derive_rng(t, "mq6")
            order = values[:]
            rng.shuffle(order)
            b = QuantileSketchBuilder(m, rng)
            for v in order:
                b.add(v)
            estimates.append(b.finalize().rank(x))
        mean = statistics.mean(estimates)
        sem = statistics.stdev(estimates) / math.sqrt(trials)
        assert abs(mean - 317) <= 4 * sem + 1e-9

    def test_std_error_calibration(self):
        # for_error should deliver std error at most ~the target.
        n, target = 4096, 150.0
        trials = 200
        errors = []
        for t in range(trials):
            rng = derive_rng(t, "mq7")
            b = QuantileSketchBuilder.for_error(n, target, rng)
            for v in range(n):
                b.add(v)
            errors.append(b.finalize().rank(n // 2) - n // 2)
        std = statistics.pstdev(errors)
        assert std <= 1.3 * target
        mean = statistics.mean(errors)
        assert abs(mean) <= 4 * std / math.sqrt(trials) + 1e-9

    def test_for_error_exact_when_loose(self):
        rng = derive_rng(0, "mq8")
        b = QuantileSketchBuilder.for_error(10, 100.0, rng)
        for v in range(10):
            b.add(v)
        # Loose error on a tiny stream: summary is lossless.
        assert b.finalize().rank(5) == 5.0

    def test_for_error_rejects_bad_error(self):
        with pytest.raises(ValueError):
            QuantileSketchBuilder.for_error(100, 0.0, derive_rng(0, "mq9"))


class TestMerge:
    def test_merge_from_preserves_weight(self):
        a = QuantileSketchBuilder(8, derive_rng(0, "mqa"))
        b = QuantileSketchBuilder(8, derive_rng(1, "mqb"))
        for v in range(100):
            a.add(v)
        for v in range(100, 250):
            b.add(v)
        a.merge_from(b)
        assert a.finalize().total_weight == 250

    def test_merge_requires_same_m(self):
        a = QuantileSketchBuilder(8, derive_rng(0, "mqc"))
        b = QuantileSketchBuilder(16, derive_rng(1, "mqd"))
        with pytest.raises(ValueError):
            a.merge_from(b)

    def test_merged_rank_reasonable(self):
        a = QuantileSketchBuilder(16, derive_rng(0, "mqe"))
        b = QuantileSketchBuilder(16, derive_rng(1, "mqf"))
        for v in range(0, 1000, 2):
            a.add(v)
        for v in range(1, 1000, 2):
            b.add(v)
        a.merge_from(b)
        est = a.finalize().rank(500)
        assert abs(est - 500) < 150
