"""Unit tests for the count-tracking protocols (Section 2)."""

import math
import statistics

import pytest

from repro import (
    DeterministicCountScheme,
    MedianBoostedScheme,
    RandomizedCountScheme,
    Simulation,
)
from repro.workloads import round_robin, single_site, uniform_sites

from ..conftest import run_count


class TestDeterministicCount:
    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            DeterministicCountScheme(0.0)
        with pytest.raises(ValueError):
            DeterministicCountScheme(1.0)

    def test_exact_small_counts(self):
        sim = run_count(DeterministicCountScheme(0.1), n=10, k=3)
        # Every change below the first (1+eps) jump is reported exactly.
        assert sim.coordinator.estimate() >= 10 / 1.1

    @pytest.mark.parametrize("n,k", [(5_000, 4), (20_000, 10)])
    def test_error_within_eps_always(self, n, k):
        eps = 0.1
        sim = Simulation(DeterministicCountScheme(eps), k)
        truth = 0
        for site_id, item in uniform_sites(n, k, seed=3):
            sim.process(site_id, item)
            truth += 1
            est = sim.coordinator.estimate()
            assert est <= truth
            assert est > truth / (1 + eps) - k  # -k: pre-first-report slack

    def test_one_way_capable(self):
        sim = Simulation(DeterministicCountScheme(0.1), 5, one_way=True)
        sim.run(uniform_sites(2_000, 5, seed=1))
        assert sim.comm.downlink_messages == 0
        assert sim.comm.broadcast_messages == 0

    def test_communication_scales_with_k_over_eps(self):
        n = 30_000
        words_a = run_count(DeterministicCountScheme(0.1), n, k=4).comm.total_words
        words_b = run_count(DeterministicCountScheme(0.1), n, k=16).comm.total_words
        # Quadrupling k roughly quadruples cost (log factor shrinks a bit).
        assert 2.0 < words_b / words_a < 6.0

    def test_site_space_constant(self):
        sim = run_count(DeterministicCountScheme(0.05), 20_000, 8)
        assert sim.space.max_site_words <= 4


class TestRandomizedCount:
    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            RandomizedCountScheme(-0.1)

    def test_exact_while_p_is_one(self):
        # While n_bar <= sqrt(k)/eps, p = 1 and the estimate is exact.
        k, eps = 16, 0.05  # sqrt(k)/eps = 80
        sim = Simulation(RandomizedCountScheme(eps), k, seed=0)
        truth = 0
        for site_id, item in round_robin(30, k):
            sim.process(site_id, item)
            truth += 1
            assert sim.coordinator.estimate() == pytest.approx(truth)

    def test_estimate_close_at_end(self):
        n, k, eps = 60_000, 16, 0.05
        sim = run_count(RandomizedCountScheme(eps), n, k)
        assert abs(sim.coordinator.estimate() - n) <= 3 * eps * n

    def test_estimate_unbiased_across_seeds(self):
        n, k, eps, runs = 8_000, 9, 0.1, 40
        estimates = []
        for seed in range(runs):
            sim = run_count(
                RandomizedCountScheme(eps), n, k, seed=seed, stream_seed=5
            )
            estimates.append(sim.coordinator.estimate())
        mean = statistics.mean(estimates)
        sem = statistics.stdev(estimates) / math.sqrt(runs)
        assert abs(mean - n) <= 4 * sem + 0.01 * n

    def test_site_space_constant(self):
        sim = run_count(RandomizedCountScheme(0.05), 50_000, 16)
        assert sim.space.max_site_words <= 6

    def test_single_site_workload(self):
        # All data at one site: the adjustment machinery is stressed.
        n, k, eps = 40_000, 25, 0.05
        sim = Simulation(RandomizedCountScheme(eps), k, seed=3)
        sim.run(single_site(n, k, site_id=7))
        assert abs(sim.coordinator.estimate() - n) <= 4 * eps * n

    def test_p_halves_over_rounds(self):
        n, k, eps = 50_000, 16, 0.05
        sim = run_count(RandomizedCountScheme(eps), n, k)
        p = sim.coordinator.p
        assert p < 1.0
        # p must be an inverse power of two.
        assert math.log2(1 / p) == int(math.log2(1 / p))
        # And consistent with the final n_bar schedule.
        from repro.core.rounds import report_probability

        assert p == report_probability(sim.coordinator.n_bar, k, eps)

    def test_sites_agree_with_coordinator_on_p(self):
        sim = run_count(RandomizedCountScheme(0.05), 30_000, 9)
        for site in sim.sites:
            assert site.p == sim.coordinator.p

    def test_uses_downlink(self):
        sim = run_count(RandomizedCountScheme(0.05), 20_000, 9)
        assert sim.comm.broadcast_messages > 0

    def test_beats_deterministic_at_small_eps(self):
        n, eps, k = 200_000, 0.01, 100
        rand = run_count(RandomizedCountScheme(eps), n, k)
        det = run_count(DeterministicCountScheme(eps), n, k)
        assert rand.comm.total_words < det.comm.total_words / 2

    def test_separation_grows_with_k(self):
        # The sqrt(k) improvement: det/rand cost ratio must grow in k.
        n, eps = 120_000, 0.01
        ratios = []
        for k in (9, 36, 100):
            rand = run_count(RandomizedCountScheme(eps), n, k)
            det = run_count(DeterministicCountScheme(eps), n, k)
            ratios.append(det.comm.total_words / rand.comm.total_words)
        assert ratios[0] < ratios[1] < ratios[2]


class TestMedianBoosting:
    def test_rejects_bad_copies(self):
        with pytest.raises(ValueError):
            MedianBoostedScheme(RandomizedCountScheme(0.1), 0)

    def test_estimate_close(self):
        n, k, eps = 30_000, 9, 0.1
        scheme = MedianBoostedScheme(RandomizedCountScheme(eps), 5)
        sim = run_count(scheme, n, k)
        assert abs(sim.coordinator.estimate() - n) <= 2 * eps * n

    def test_cost_scales_with_copies(self):
        n, k, eps = 20_000, 9, 0.1
        one = run_count(RandomizedCountScheme(eps), n, k).comm.total_words
        five = run_count(
            MedianBoostedScheme(RandomizedCountScheme(eps), 5), n, k
        ).comm.total_words
        assert 3.0 < five / one < 7.0

    def test_copies_are_independent(self):
        # Inner coordinators should disagree slightly (independent RNG).
        scheme = MedianBoostedScheme(RandomizedCountScheme(0.05), 5)
        sim = run_count(scheme, 40_000, 9)
        estimates = {round(c.estimate(), 3) for c in sim.coordinator.inner}
        assert len(estimates) > 1

    def test_name_mentions_base(self):
        scheme = MedianBoostedScheme(RandomizedCountScheme(0.1), 3)
        assert "median3" in scheme.name

    def test_copies_for_confidence_is_odd(self):
        from repro import copies_for_confidence

        for delta in [0.1, 0.01]:
            m = copies_for_confidence(delta, 0.05, 10**6)
            assert m % 2 == 1
            assert m >= 3
