"""HTTP gateway endpoints, error mapping, and the `repro query` CLI."""

import json
import urllib.error
import urllib.request

import pytest

from repro import TrackingService
from repro.cli import main as cli_main
from repro.net.gateway import GatewayThread, jsonable


@pytest.fixture()
def gateway():
    service = TrackingService(num_sites=8, seed=5)
    with GatewayThread(service) as gw:
        yield gw
    service.close()


def get(gw, path):
    with urllib.request.urlopen(gw.url + path, timeout=30) as response:
        return response.status, json.load(response)


def request(gw, method, path, obj=None):
    data = None if obj is None else json.dumps(obj).encode()
    req = urllib.request.Request(
        gw.url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


class TestEndpoints:
    def test_healthz(self, gateway):
        status, body = get(gateway, "/healthz")
        assert status == 200
        assert body["ok"] is True
        assert body["queue"]["capacity_events"] > 0

    def test_register_ingest_query_status(self, gateway):
        status, body = request(
            gateway,
            "POST",
            "/v1/jobs",
            {"name": "total", "spec": "count/randomized:0.05"},
        )
        assert (status, body["registered"]) == (200, "total")
        status, body = request(
            gateway,
            "POST",
            "/v1/jobs",
            {"name": "hh", "spec": "frequency/deterministic:0.1"},
        )
        assert status == 200

        site_ids = [i % 8 for i in range(4000)]
        items = [i % 5 for i in range(4000)]
        status, body = request(
            gateway, "POST", "/v1/ingest", {"site_ids": site_ids, "items": items}
        )
        assert status == 200
        assert body["ingested"] == 4000

        status, body = request(gateway, "POST", "/v1/query", {"job": "total"})
        assert status == 200
        assert body["result"] > 0

        status, body = get(gateway, "/v1/query/hh?method=top_items&arg=2")
        assert status == 200
        assert len(body["result"]) == 2

        status, body = get(gateway, "/v1/status")
        assert status == 200
        assert set(body["jobs"]) == {"total", "hh"}
        assert body["elements"] == 4000

        status, body = get(gateway, "/v1/jobs")
        assert body["jobs"]["total"]["elements"] == 4000

    def test_gateway_matches_in_process_service(self, gateway):
        """Transcript equivalence: HTTP ingestion == direct ingestion."""
        request(
            gateway,
            "POST",
            "/v1/jobs",
            {"name": "total", "spec": "count/randomized:0.05"},
        )
        batches = [
            [(i * 7 + j) % 8 for j in range(500)] for i in range(6)
        ]
        for batch in batches:
            status, _ = request(
                gateway, "POST", "/v1/ingest", {"site_ids": batch}
            )
            assert status == 200
        _, body = request(gateway, "POST", "/v1/query", {"job": "total"})

        direct = TrackingService(num_sites=8, seed=5)
        direct.register("total", __import__("repro").RandomizedCountScheme(0.05))
        for batch in batches:
            direct.ingest(batch)
        assert body["result"] == direct.query("total")

    def test_unregister(self, gateway):
        request(gateway, "POST", "/v1/jobs", {"name": "x", "spec": "count/deterministic"})
        status, body = request(gateway, "DELETE", "/v1/jobs/x")
        assert (status, body["unregistered"]) == (200, "x")
        status, _ = request(gateway, "POST", "/v1/query", {"job": "x"})
        assert status == 404


class TestErrorMapping:
    def test_unknown_route_404(self, gateway):
        status, body = request(gateway, "GET", "/nope")
        assert status == 404 and "error" in body

    def test_unknown_job_404(self, gateway):
        status, _ = request(gateway, "POST", "/v1/query", {"job": "ghost"})
        assert status == 404

    def test_duplicate_job_409(self, gateway):
        spec = {"name": "dup", "spec": "count/deterministic"}
        assert request(gateway, "POST", "/v1/jobs", spec)[0] == 200
        assert request(gateway, "POST", "/v1/jobs", spec)[0] == 409

    def test_bad_spec_400(self, gateway):
        status, body = request(
            gateway, "POST", "/v1/jobs", {"name": "bad", "spec": "nope/nope"}
        )
        assert status == 400 and "bad job spec" in body["error"]

    def test_malformed_json_400(self, gateway):
        req = urllib.request.Request(
            gateway.url + "/v1/ingest",
            data=b"{oops",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=30)
        assert excinfo.value.code == 400

    def test_ingest_without_sites_400(self, gateway):
        status, _ = request(gateway, "POST", "/v1/ingest", {"site_ids": []})
        assert status == 400

    def test_items_length_mismatch_400(self, gateway):
        status, _ = request(
            gateway, "POST", "/v1/ingest", {"site_ids": [0, 1], "items": [1]}
        )
        assert status == 400

    def test_method_not_allowed_405(self, gateway):
        status, _ = request(gateway, "DELETE", "/v1/jobs")
        assert status == 405

    def _raw(self, gateway, blob: bytes) -> bytes:
        import socket

        host, port = gateway.url.split("//")[1].rsplit(":", 1)
        with socket.create_connection((host, int(port)), timeout=30) as sock:
            sock.sendall(blob)
            sock.shutdown(socket.SHUT_WR)
            out = b""
            while chunk := sock.recv(65536):
                out += chunk
            return out

    def test_malformed_content_length_gets_400(self, gateway):
        """Parse-level failures still answer with a coded response."""
        response = self._raw(
            gateway,
            b"POST /v1/ingest HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 400")

    def test_oversized_body_gets_413(self, gateway):
        response = self._raw(
            gateway,
            b"POST /v1/ingest HTTP/1.1\r\n"
            b"Content-Length: 999999999999\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 413")

    def test_malformed_request_line_gets_400(self, gateway):
        response = self._raw(gateway, b"NONSENSE\r\n\r\n")
        assert response.startswith(b"HTTP/1.1 400")


class TestJsonable:
    def test_tuples_and_sets(self):
        assert jsonable(((1, 2), {3, 1})) == [[1, 2], [1, 3]]

    def test_tuple_dict_keys(self):
        out = jsonable({(0, "a"): 1.5, "plain": 2})
        assert out == {'[0,"a"]': 1.5, "plain": 2}
        json.dumps(out)  # renderable


class TestQueryCli:
    def test_query_cli_pretty_prints(self, gateway, capsys):
        request(
            gateway,
            "POST",
            "/v1/jobs",
            {"name": "total", "spec": "count/deterministic:0.05"},
        )
        request(gateway, "POST", "/v1/ingest", {"site_ids": [0, 1, 2, 3] * 50})
        rc = cli_main(["query", gateway.url, "total", "estimate"])
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert payload["job"] == "total"
        assert payload["result"] == pytest.approx(200.0, rel=0.06)
        assert out.count("\n") > 3  # indented, human-readable

    def test_query_cli_json_args(self, gateway, capsys):
        request(
            gateway,
            "POST",
            "/v1/jobs",
            {"name": "hh", "spec": "frequency/deterministic:0.1"},
        )
        request(
            gateway,
            "POST",
            "/v1/ingest",
            {"site_ids": [0, 1] * 100, "items": [7, 8] * 100},
        )
        rc = cli_main(["query", gateway.url, "hh", "top_items", "1"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["result"]) == 1

    def test_query_cli_unknown_job_fails(self, gateway, capsys):
        rc = cli_main(["query", gateway.url, "ghost"])
        assert rc == 1
        assert "HTTP 404" in capsys.readouterr().err

    def test_query_cli_no_server(self, capsys):
        rc = cli_main(["query", "http://127.0.0.1:9", "x"])
        assert rc == 1
        assert "error" in capsys.readouterr().err


class TestQuotaEnforcement:
    def test_rate_limit_429_with_retry_after(self):
        service = TrackingService(num_sites=4, seed=1)
        with GatewayThread(
            service, max_ingest_rate=10.0, ingest_burst=100
        ) as gw:
            request(
                gw, "POST", "/v1/jobs",
                {"name": "t", "spec": "count/deterministic:0.1"},
            )
            status, _ = request(
                gw, "POST", "/v1/ingest", {"site_ids": [0] * 90}
            )
            assert status == 200
            # the bucket is drained; the next request must be rejected
            import urllib.error as _err
            import urllib.request as _req

            req = _req.Request(
                gw.url + "/v1/ingest",
                data=json.dumps({"site_ids": [0] * 90}).encode(),
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(_err.HTTPError) as excinfo:
                _req.urlopen(req, timeout=30)
            assert excinfo.value.code == 429
            assert int(excinfo.value.headers["Retry-After"]) >= 1
            body = json.load(excinfo.value)
            assert "rate limit" in body["error"]
            status, health = get(gw, "/healthz")
            assert health["quota"]["rejected_429"] == 1
            assert health["quota"]["max_ingest_rate"] == 10.0
        service.close()

    def test_space_budget_413(self):
        service = TrackingService(num_sites=4, seed=2,
                                  space_sample_interval=64)
        with GatewayThread(service) as gw:
            request(
                gw, "POST", "/v1/jobs",
                {
                    "name": "hh",
                    "spec": "frequency/deterministic:0.01",
                    "space_budget_words": 5,
                },
            )
            status, _ = request(
                gw, "POST", "/v1/ingest",
                {
                    "site_ids": [i % 4 for i in range(2000)],
                    "items": list(range(2000)),
                },
            )
            assert status == 200  # budget trips only after the sweep
            status, body = request(
                gw, "POST", "/v1/ingest", {"site_ids": [0], "items": [1]}
            )
            assert status == 413
            assert "space budget exceeded" in body["error"]
            assert "hh" in body["error"]
            _, health = get(gw, "/healthz")
            assert health["quota"]["rejected_413"] >= 1
            # dropping the offending job clears the quota block
            request(gw, "DELETE", "/v1/jobs/hh")
            status, _ = request(
                gw, "POST", "/v1/ingest", {"site_ids": [0], "items": [1]}
            )
            assert status == 200
        service.close()

    def test_no_quota_no_rejections(self):
        service = TrackingService(num_sites=4, seed=3)
        with GatewayThread(service) as gw:
            request(
                gw, "POST", "/v1/jobs",
                {"name": "t", "spec": "count/deterministic:0.1"},
            )
            for _ in range(3):
                status, _ = request(
                    gw, "POST", "/v1/ingest", {"site_ids": [0] * 5000}
                )
                assert status == 200
            _, health = get(gw, "/healthz")
            assert health["quota"] == {
                "max_ingest_rate": None,
                "rejected_429": 0,
                "rejected_413": 0,
            }
        service.close()


class TestTokenBucket:
    def test_refill_and_debt(self):
        from repro.net.gateway import TokenBucket

        clock = [0.0]
        bucket = TokenBucket(rate=100.0, burst=200, clock=lambda: clock[0])
        assert bucket.try_admit(200) == 0.0  # full burst admitted
        wait = bucket.try_admit(50)
        assert wait == pytest.approx(0.5)  # 50 tokens at 100/s
        clock[0] += 0.5
        assert bucket.try_admit(50) == 0.0
        # an oversized request waits for a full bucket, then overdrafts
        wait = bucket.try_admit(1000)
        assert wait == pytest.approx(2.0)
        clock[0] += 2.0
        assert bucket.try_admit(1000) == 0.0
        assert bucket.tokens < 0  # overdraft charged to the future

    def test_validation(self):
        from repro.net.gateway import TokenBucket

        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=10)
        with pytest.raises(ValueError):
            TokenBucket(rate=5, burst=0)


class TestShardedGateway:
    def test_full_surface_over_sharded_service(self):
        from repro import ShardedTrackingService

        service = ShardedTrackingService(
            num_sites=8, num_shards=4, seed=5, executor="thread"
        )
        with GatewayThread(service) as gw:
            status, body = request(
                gw, "POST", "/v1/jobs",
                {"name": "total", "spec": "count/randomized:0.05",
                 "seed": 77},
            )
            assert (status, body["registered"]) == (200, "total")
            request(
                gw, "POST", "/v1/jobs",
                {"name": "hh", "spec": "frequency/deterministic:0.1"},
            )
            site_ids = [i % 8 for i in range(4000)]
            items = [i % 5 for i in range(4000)]
            status, body = request(
                gw, "POST", "/v1/ingest",
                {"site_ids": site_ids, "items": items},
            )
            assert (status, body["ingested"]) == (200, 4000)
            status, body = request(
                gw, "POST", "/v1/query", {"job": "total"}
            )
            assert status == 200
            assert abs(body["result"] - 4000) <= 2 * 0.05 * 4000
            status, body = get(gw, "/v1/query/hh?method=top_items&arg=2")
            assert status == 200 and len(body["result"]) == 2
            status, body = get(gw, "/v1/status")
            assert status == 200
            assert body["shards"] == 4
            assert body["jobs"]["total"]["elements"] == 4000
            # merged answers equal an identically-seeded in-process mirror
            mirror = ShardedTrackingService(
                num_sites=8, num_shards=4, seed=5
            )
            from repro import RandomizedCountScheme

            mirror.register("total", RandomizedCountScheme(0.05), seed=77)
            mirror.ingest(site_ids, items)
            _, body = request(gw, "POST", "/v1/query", {"job": "total"})
            assert body["result"] == mirror.query("total")
            mirror.close()
        service.close()
