"""Unit tests for top-k queries and the command-line interface."""

from collections import Counter

import pytest

from repro import (
    DeterministicFrequencyScheme,
    DistributedSamplingScheme,
    RandomizedFrequencyScheme,
    Simulation,
)
from repro.cli import build_parser, main, make_stream
from repro.workloads import uniform_sites, with_items, zipf_items


def zipf_run(scheme, n=30_000, k=9, alpha=1.5):
    stream = list(
        with_items(uniform_sites(n, k, seed=1), zipf_items(100, alpha=alpha, seed=2))
    )
    truth = Counter(j for _, j in stream)
    sim = Simulation(scheme, k, seed=3)
    sim.run(stream)
    return sim, truth


class TestTopItems:
    @pytest.mark.parametrize(
        "scheme_factory",
        [
            lambda: RandomizedFrequencyScheme(0.02),
            lambda: DeterministicFrequencyScheme(0.02),
            lambda: DistributedSamplingScheme(0.02),
        ],
        ids=["randomized", "deterministic", "sampling"],
    )
    def test_top_items_recall_head(self, scheme_factory):
        sim, truth = zipf_run(scheme_factory())
        top = [j for j, _ in sim.coordinator.top_items(5)]
        true_top3 = [j for j, _ in truth.most_common(3)]
        # The unambiguous head of a Zipf(1.5) law must be found.
        for item in true_top3:
            assert item in top

    def test_top_items_sorted_descending(self):
        sim, _ = zipf_run(RandomizedFrequencyScheme(0.02))
        estimates = [est for _, est in sim.coordinator.top_items(10)]
        assert estimates == sorted(estimates, reverse=True)

    def test_top_items_limit(self):
        sim, _ = zipf_run(DeterministicFrequencyScheme(0.05))
        assert len(sim.coordinator.top_items(3)) == 3


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["count"])
        assert args.problem == "count"
        assert args.scheme == "randomized"
        assert args.k == 25

    def test_list_schemes(self, capsys):
        assert main(["rank", "--list-schemes"]) == 0
        out = capsys.readouterr().out
        assert "randomized" in out
        assert "cormode05" in out

    def test_unknown_scheme_errors(self):
        with pytest.raises(SystemExit):
            main(["count", "--scheme", "nonsense", "-n", "100"])

    def test_count_run(self, capsys):
        assert main(["count", "-n", "5000", "-k", "4", "--eps", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "count/randomized" in out
        assert "words" in out

    def test_compare_runs_all(self, capsys):
        assert main(["count", "--compare", "-n", "4000", "-k", "4",
                     "--eps", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "count/deterministic" in out
        assert "sampling/level" in out

    def test_frequency_run(self, capsys):
        assert main(["frequency", "-n", "5000", "-k", "4", "--eps", "0.1"]) == 0
        assert "top item" in capsys.readouterr().out

    def test_rank_run_sorted_workload(self, capsys):
        assert main(["rank", "-n", "5000", "-k", "4", "--eps", "0.1",
                     "--workload", "sorted"]) == 0
        assert "rank(median)" in capsys.readouterr().out

    def test_make_stream_shapes(self):
        stream = make_stream("count", "round-robin", 10, 2, 0)
        assert [s for s, _ in stream] == [0, 1] * 5
        stream = make_stream("rank", "sorted", 10, 2, 0)
        assert sorted(v for _, v in stream) == list(range(10))
