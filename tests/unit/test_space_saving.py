"""Unit tests for the SpaceSaving summary."""

import pytest

from repro.sketch import SpaceSaving


class TestBasics:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)

    def test_rejects_nonpositive_count(self):
        ss = SpaceSaving(2)
        with pytest.raises(ValueError):
            ss.add("a", 0)

    def test_exact_under_capacity(self):
        ss = SpaceSaving(10)
        for item in "aabbbc":
            ss.add(item)
        assert ss.estimate("a") == 2
        assert ss.estimate("b") == 3
        assert ss.errors["a"] == 0

    def test_eviction_inherits_floor(self):
        ss = SpaceSaving(2)
        ss.add("a", 5)
        ss.add("b", 3)
        ss.add("c")  # evicts b (the minimum), inherits 3
        assert ss.estimate("c") == 4
        assert ss.errors["c"] == 3
        assert "b" not in ss.counts

    def test_capacity_respected(self):
        ss = SpaceSaving(3)
        for i in range(100):
            ss.add(i)
        assert len(ss.counts) == 3


class TestGuarantees:
    def test_never_undercounts_stored(self):
        ss = SpaceSaving(8)
        truth = {}
        stream = [i % 11 for i in range(1000)]
        for item in stream:
            ss.add(item)
            truth[item] = truth.get(item, 0) + 1
        for item in ss.counts:
            assert ss.estimate(item) >= truth[item]

    def test_overcount_bound(self):
        ss = SpaceSaving(10)
        truth = {}
        stream = [0 if i % 2 else i % 37 for i in range(2000)]
        for item in stream:
            ss.add(item)
            truth[item] = truth.get(item, 0) + 1
        for item in ss.counts:
            assert ss.estimate(item) - truth[item] <= ss.error_bound() + 1e-9

    def test_guaranteed_count_is_lower_bound(self):
        ss = SpaceSaving(5)
        truth = {}
        for i in range(500):
            item = i % 23
            ss.add(item)
            truth[item] = truth.get(item, 0) + 1
        for item in ss.counts:
            assert ss.guaranteed_count(item) <= truth[item]

    def test_heavy_hitters_no_false_negatives(self):
        ss = SpaceSaving(20)
        stream = [0] * 400 + [1] * 200 + list(range(2, 150))
        for item in stream:
            ss.add(item)
        hh = ss.heavy_hitters(0.25 * ss.n)
        assert 0 in hh

    def test_space_words(self):
        ss = SpaceSaving(5)
        ss.add("a")
        ss.add("b")
        assert ss.space_words() == 3 * 2 + 2
