"""Unit tests for the multi-tenant tracking service subsystem."""

import pytest

from repro import (
    DeterministicCountScheme,
    RandomizedCountScheme,
    RandomizedFrequencyScheme,
    TrackingService,
)
from repro.runtime import Simulation, batch_from_stream, decompose_runs
from repro.service import (
    BatchIngestEngine,
    DuplicateJobError,
    TrackingJob,
    UnknownJobError,
)
from repro.workloads import multi_tenant, uniform_sites

np = pytest.importorskip("numpy")


def make_service(k=8, **kwargs):
    return TrackingService(num_sites=k, seed=5, **kwargs)


class TestRegistry:
    def test_register_returns_job(self):
        service = make_service()
        job = service.register("total", RandomizedCountScheme(0.1))
        assert isinstance(job, TrackingJob)
        assert job.name == "total"
        assert service.job("total") is job
        assert service["total"] is job
        assert "total" in service
        assert len(service) == 1

    def test_duplicate_name_rejected(self):
        service = make_service()
        service.register("total", RandomizedCountScheme(0.1))
        with pytest.raises(DuplicateJobError):
            service.register("total", DeterministicCountScheme(0.1))

    def test_bad_names_rejected(self):
        service = make_service()
        with pytest.raises(ValueError):
            service.register("", RandomizedCountScheme(0.1))
        with pytest.raises(ValueError):
            service.register(None, RandomizedCountScheme(0.1))

    def test_unknown_job_raises(self):
        service = make_service()
        with pytest.raises(UnknownJobError):
            service.job("nope")
        with pytest.raises(UnknownJobError):
            service.unregister("nope")
        with pytest.raises(UnknownJobError):
            service.query("nope")

    def test_unregister_removes(self):
        service = make_service()
        job = service.register("x", RandomizedCountScheme(0.1))
        assert service.unregister("x") is job
        assert "x" not in service
        # Name is free again.
        service.register("x", RandomizedCountScheme(0.1))

    def test_distinct_default_seeds_per_job(self):
        service = make_service()
        a = service.register("a", RandomizedCountScheme(0.1))
        b = service.register("b", RandomizedCountScheme(0.1))
        assert a.seed != b.seed

    def test_jobs_view_is_copy(self):
        service = make_service()
        service.register("a", RandomizedCountScheme(0.1))
        view = service.jobs
        view.clear()
        assert "a" in service

    def test_late_registration_sees_only_later_events(self):
        service = make_service(k=4)
        service.register("early", DeterministicCountScheme(0.1))
        service.ingest([0, 1, 2, 3], None)
        late = service.register("late", DeterministicCountScheme(0.1))
        service.ingest([0, 1], None)
        assert service["early"].elements_processed == 6
        assert late.elements_processed == 2


class TestLedgerIsolation:
    def test_per_job_ledgers_and_aggregate(self):
        k, n = 6, 4000
        stream = list(uniform_sites(n, k, seed=2))
        sids, items = batch_from_stream(stream)
        service = make_service(k=k)
        service.register("rand", RandomizedCountScheme(0.1), seed=7)
        service.register("det", DeterministicCountScheme(0.1), seed=7)
        service.ingest(np.asarray(sids), items)

        # Each job's ledger matches the standalone simulation of the same
        # scheme with the same seed — fully isolated from its neighbour.
        for name, scheme in (
            ("rand", RandomizedCountScheme(0.1)),
            ("det", DeterministicCountScheme(0.1)),
        ):
            sim = Simulation(scheme, k, seed=7)
            sim.run(stream)
            assert service[name].comm.snapshot() == sim.comm.snapshot()

        # And the service aggregate is exactly their sum.
        agg = service.comm.snapshot()
        for key in ("uplink_messages", "uplink_words", "total_messages", "total_words"):
            assert agg[key] == (
                service["rand"].comm.snapshot()[key]
                + service["det"].comm.snapshot()[key]
            )

    def test_space_ledgers_are_per_job(self):
        k = 4
        service = make_service(k=k, space_sample_interval=16)
        service.register("freq", RandomizedFrequencyScheme(0.2))
        service.register("count", DeterministicCountScheme(0.2))
        stream = list(uniform_sites(500, k, seed=3))
        service.ingest(*batch_from_stream(stream))
        freq_space = service["freq"].space.max_site_words
        count_space = service["count"].space.max_site_words
        assert freq_space > 0 and count_space > 0
        # A frequency summary dwarfs the two-word count state.
        assert freq_space > count_space


class TestQueryApi:
    def test_default_query_dispatch(self):
        service = make_service(k=4)
        service.register("total", DeterministicCountScheme(0.1))
        service.ingest([0, 1, 2, 3] * 50, None)
        assert service.query("total") > 0

    def test_named_query_with_args(self):
        service = make_service(k=4)
        service.register("hh", RandomizedFrequencyScheme(0.2))
        sids = [i % 4 for i in range(400)]
        items = [i % 7 for i in range(400)]
        service.ingest(sids, items)
        top = service.query("hh", "top_items", 3)
        assert len(top) == 3

    def test_unknown_method_lists_alternatives(self):
        service = make_service(k=4)
        service.register("total", DeterministicCountScheme(0.1))
        with pytest.raises(AttributeError, match="estimate"):
            service.query("total", "quantile", 0.5)

    def test_private_method_rejected(self):
        service = make_service(k=4)
        service.register("total", DeterministicCountScheme(0.1))
        with pytest.raises(AttributeError):
            service.query("total", "_total")

    def test_status_shape(self):
        service = make_service(k=4, space_budget_words=1000)
        service.register("total", RandomizedCountScheme(0.1))
        service.ingest([0, 1, 2, 3] * 25, None)
        status = service.status()
        assert status["sites"] == 4
        assert status["elements"] == 100
        assert set(status["jobs"]) == {"total"}
        job = status["jobs"]["total"]
        # The pods-style resource triple.
        assert set(job["space"]) == {"total", "used", "available"}
        assert job["space"]["total"] == 1000
        used = job["space"]["used"]["max_site_words"]
        assert job["space"]["available"] == 1000 - used
        assert job["comm"]["total_messages"] > 0
        assert job["accuracy"]["epsilon"] == 0.1
        assert job["accuracy"]["estimate"] is not None

    def test_status_without_budget(self):
        service = make_service(k=4)
        service.register("total", RandomizedCountScheme(0.1))
        job = service.status()["jobs"]["total"]
        assert job["space"]["total"] is None
        assert job["space"]["available"] is None


class TestDecomposeRuns:
    def test_runs_preserve_order_and_content(self):
        sids = [0, 0, 1, 1, 1, 0, 2]
        items = list("abcdefg")
        runs = decompose_runs(sids, items)
        assert [s for s, _ in runs] == [0, 1, 0, 2]
        flat = [x for _, chunk in runs for x in chunk]
        assert flat == items

    def test_numpy_and_list_paths_agree(self):
        rng_sids = [i % 3 for i in range(10)] + [1] * 5
        items = list(range(15))
        assert decompose_runs(rng_sids, items) == decompose_runs(
            np.asarray(rng_sids), np.asarray(items)
        )

    def test_none_items_become_unit_runs(self):
        runs = decompose_runs([2, 2, 0], None)
        assert runs == [(2, [1, 1]), (0, [1])]
        runs_np = decompose_runs(np.asarray([2, 2, 0]), None)
        assert runs_np == runs

    def test_empty_batch(self):
        assert decompose_runs([], []) == []
        assert decompose_runs(np.asarray([], dtype=np.int64), None) == []

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            decompose_runs([0, 1], [1])
        with pytest.raises(ValueError):
            decompose_runs(np.asarray([0, 1]), [1, 2, 3])

    def test_batch_from_stream_round_trips(self):
        stream = [(0, "a"), (1, "b"), (1, "c")]
        sids, items = batch_from_stream(iter(stream))
        assert sids == [0, 1, 1]
        assert items == ["a", "b", "c"]


class TestEngine:
    def test_engine_ingest_counts(self):
        engine = BatchIngestEngine()
        service = make_service(k=3)
        service.register("a", DeterministicCountScheme(0.1))
        n = engine.ingest(service.jobs.values(), [0, 1, 2, 2], None)
        assert n == 4

    def test_ingest_stream_chunks_match_single_batch(self):
        k = 5
        stream = list(uniform_sites(3000, k, seed=4))
        a = make_service(k=k)
        a.register("x", RandomizedCountScheme(0.1), seed=3)
        a.ingest_stream(iter(stream), batch_size=257)
        b = make_service(k=k)
        b.register("x", RandomizedCountScheme(0.1), seed=3)
        sids, items = batch_from_stream(stream)
        b.ingest(sids, items)
        assert a["x"].comm.snapshot() == b["x"].comm.snapshot()
        assert a["x"].query() == b["x"].query()

    def test_ingest_stream_rejects_bad_batch_size(self):
        service = make_service()
        with pytest.raises(ValueError):
            service.ingest_stream(iter([]), batch_size=0)


class TestMultiTenantWorkload:
    def test_length_and_site_range(self):
        events = list(multi_tenant(1000, 7, tenants=3, seed=1))
        assert len(events) == 1000
        assert all(0 <= s < 7 for s, _ in events)

    def test_labeled_items_carry_tenant(self):
        events = list(multi_tenant(200, 4, tenants=2, seed=1))
        labels = {label for _, (label, _) in events}
        assert labels <= {"t0", "t1"}
        assert len(labels) == 2

    def test_unlabeled_items_are_ints(self):
        events = list(multi_tenant(100, 4, tenants=2, seed=1, labeled=False))
        assert all(isinstance(item, int) for _, item in events)

    def test_bursts_are_contiguous_per_site(self):
        burst = 16
        events = list(multi_tenant(320, 5, tenants=2, burst=burst, seed=2))
        sids = [s for s, _ in events]
        for start in range(0, len(sids), burst):
            assert len(set(sids[start : start + burst])) == 1

    def test_deterministic_under_seed(self):
        a = list(multi_tenant(300, 6, tenants=3, seed=9))
        b = list(multi_tenant(300, 6, tenants=3, seed=9))
        c = list(multi_tenant(300, 6, tenants=3, seed=10))
        assert a == b
        assert a != c

    def test_values_live_in_tenant_slices(self):
        universe = 50
        for _, (label, value) in multi_tenant(
            400, 4, tenants=3, universe=universe, seed=3
        ):
            tenant = int(label[1:])
            assert tenant * universe <= value < (tenant + 1) * universe

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            list(multi_tenant(10, 4, tenants=0))
        with pytest.raises(ValueError):
            list(multi_tenant(10, 4, burst=0))
