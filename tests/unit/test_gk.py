"""Unit tests for the Greenwald–Khanna quantile summary."""

import random

import pytest

from repro.sketch import GKSummary


def exact_rank(sorted_values, x):
    import bisect

    return bisect.bisect_left(sorted_values, x)


class TestBasics:
    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            GKSummary(0.0)
        with pytest.raises(ValueError):
            GKSummary(1.0)

    def test_empty_rank_zero(self):
        gk = GKSummary(0.1)
        assert gk.rank(5) == 0.0

    def test_empty_quantile_raises(self):
        gk = GKSummary(0.1)
        with pytest.raises(ValueError):
            gk.quantile(0.5)

    def test_single_element(self):
        gk = GKSummary(0.1)
        gk.add(42)
        assert gk.quantile(0.5) == 42
        assert gk.rank(42) == 0.0
        assert gk.rank(100) >= 0.0


class TestAccuracy:
    @pytest.mark.parametrize("order", ["sorted", "reversed", "random"])
    def test_rank_error_within_eps(self, order):
        eps = 0.05
        gk = GKSummary(eps)
        n = 3000
        values = list(range(n))
        if order == "reversed":
            values = values[::-1]
        elif order == "random":
            random.Random(7).shuffle(values)
        for v in values:
            gk.add(v)
        svals = sorted(values)
        for q in range(0, n, 100):
            err = abs(gk.rank(q) - exact_rank(svals, q))
            assert err <= eps * n + 1

    def test_quantile_error_within_eps(self):
        eps = 0.05
        gk = GKSummary(eps)
        n = 2000
        values = list(range(n))
        random.Random(3).shuffle(values)
        for v in values:
            gk.add(v)
        for phi in [0.1, 0.25, 0.5, 0.75, 0.9]:
            q = gk.quantile(phi)
            # Values are 0..n-1, so the value IS its rank.
            assert abs(q - phi * n) <= 2 * eps * n + 1

    def test_duplicates_handled(self):
        gk = GKSummary(0.1)
        for _ in range(100):
            gk.add(5)
        for _ in range(100):
            gk.add(10)
        assert gk.rank(7) == pytest.approx(100, abs=0.1 * 200 + 1)


class TestCompression:
    def test_space_sublinear(self):
        eps = 0.02
        gk = GKSummary(eps)
        rng = random.Random(0)
        n = 20_000
        for _ in range(n):
            gk.add(rng.random())
        # GK keeps O(1/eps * log(eps n)) entries; assert well below n.
        assert len(gk) < n / 10
        assert len(gk) < 30 / eps

    def test_compress_preserves_total_g(self):
        gk = GKSummary(0.1)
        for i in range(500):
            gk.add(i)
        gk.compress()
        assert sum(gk.g) == 500

    def test_extremes_survive(self):
        gk = GKSummary(0.1)
        values = list(range(1000))
        random.Random(1).shuffle(values)
        for v in values:
            gk.add(v)
        assert gk.quantile(0.0) <= 0.1 * 1000
        assert gk.quantile(1.0) >= 1000 - 0.1 * 1000 - 1
