"""SSE framing and the standing-query bookkeeping (hub, replay ring)."""

import asyncio
import json

import pytest

from repro.obs import Subscription, SubscriptionHub, render_sse_event
from repro.obs.tracing import (
    SpanRecorder,
    current_trace,
    filter_spans,
    new_trace_id,
    trace_scope,
)


class TestRenderSseEvent:
    def test_minimal_frame(self):
        assert render_sse_event("hi") == "data: hi\n\n"

    def test_full_frame_field_order(self):
        frame = render_sse_event("x", event="delta", id=7, retry=3000)
        assert frame == "retry: 3000\nevent: delta\nid: 7\ndata: x\n\n"

    def test_multiline_data_split(self):
        frame = render_sse_event('{"a":\n1}', event="delta")
        assert frame == 'event: delta\ndata: {"a":\ndata: 1}\n\n'

    def test_blank_line_terminator(self):
        assert render_sse_event("x").endswith("\n\n")

    def test_newlines_rejected_in_fields(self):
        with pytest.raises(ValueError):
            render_sse_event("x", event="a\nb")
        with pytest.raises(ValueError):
            render_sse_event("x", id="1\r2")


class TestSubscription:
    def _sub(self):
        return Subscription("abc123", {"kind": "query", "job": "j"})

    def test_ids_monotonic_from_one(self):
        sub = self._sub()
        loop = asyncio.new_event_loop()
        try:
            asyncio.set_event_loop(loop)
            assert sub.publish({"v": 1}) == 1
            assert sub.publish({"v": 2}) == 2
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    def test_replay_after_filters_by_id(self):
        sub = self._sub()
        loop = asyncio.new_event_loop()
        try:
            asyncio.set_event_loop(loop)
            for v in range(5):
                sub.publish({"v": v})
        finally:
            asyncio.set_event_loop(None)
            loop.close()
        frames = sub.replay_after(3)
        assert [fid for fid, _, _ in frames] == [4, 5]
        assert json.loads(frames[0][2]) == {"v": 3}

    def test_replay_ring_bounded(self):
        sub = Subscription("x", {}, replay=3)
        loop = asyncio.new_event_loop()
        try:
            asyncio.set_event_loop(loop)
            for v in range(10):
                sub.publish({"v": v})
        finally:
            asyncio.set_event_loop(None)
            loop.close()
        assert [fid for fid, _, _ in sub.replay_after(0)] == [8, 9, 10]

    def test_publish_fans_out_to_listeners(self):
        async def run():
            sub = self._sub()
            q1, q2 = sub.attach_listener(), sub.attach_listener()
            sub.publish({"v": 1}, event="delta")
            f1, f2 = q1.get_nowait(), q2.get_nowait()
            assert f1 == f2
            assert f1[1] == "delta"
            sub.detach_listener(q1)
            sub.publish({"v": 2})
            assert q1.empty()
            assert q2.qsize() == 1

        asyncio.run(run())

    def test_replay_ring_wraparound_past_default(self):
        # The default ring keeps 64 events; a client reconnecting with a
        # Last-Event-ID older than the ring start gets only what is
        # retained (no error, no phantom events).
        sub = self._sub()
        loop = asyncio.new_event_loop()
        try:
            asyncio.set_event_loop(loop)
            for v in range(80):
                sub.publish({"v": v})
        finally:
            asyncio.set_event_loop(None)
            loop.close()
        frames = sub.replay_after(0)
        assert len(frames) == 64
        assert [fid for fid, _, _ in frames] == list(range(17, 81))
        # a Last-Event-ID that fell off the ring replays the whole ring
        assert [fid for fid, _, _ in sub.replay_after(5)] == list(
            range(17, 81)
        )
        # the newest id replays nothing
        assert sub.replay_after(80) == []

    def test_never_evaluated_flag(self):
        sub = self._sub()
        assert sub.never_evaluated
        sub.last_value = None  # None is a legitimate evaluated value
        assert not sub.never_evaluated

    def test_describe(self):
        sub = self._sub()
        info = sub.describe()
        assert info["id"] == "abc123"
        assert info["spec"]["kind"] == "query"
        assert info["listeners"] == 0
        assert info["events_delivered"] == 0


class TestSubscriptionHub:
    def test_subscribe_get_unsubscribe(self):
        hub = SubscriptionHub()
        sub = hub.subscribe({"kind": "query"})
        assert hub.get(sub.sid) is sub
        assert len(hub) == 1
        assert hub.unsubscribe(sub.sid)
        assert hub.get(sub.sid) is None
        assert not hub.unsubscribe(sub.sid)

    def test_cap_enforced(self):
        hub = SubscriptionHub(max_subscriptions=2)
        hub.subscribe({})
        hub.subscribe({})
        with pytest.raises(OverflowError):
            hub.subscribe({})

    def test_all_lists_subscriptions(self):
        hub = SubscriptionHub()
        a, b = hub.subscribe({}), hub.subscribe({})
        assert {s.sid for s in hub.all()} == {a.sid, b.sid}


class TestSpanRecorder:
    def test_span_records_duration_and_attrs(self):
        rec = SpanRecorder()
        with rec.span("dispatch", events=10) as attrs:
            attrs["extra"] = 1
        spans = rec.dump()
        assert len(spans) == 1
        span = spans[0]
        assert span["name"] == "dispatch"
        assert span["attrs"] == {"events": 10, "extra": 1}
        assert span["duration_s"] >= 0.0

    def test_span_records_error(self):
        rec = SpanRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("merge"):
                raise RuntimeError("boom")
        attrs = rec.dump()[0]["attrs"]
        assert attrs["error"] is True
        assert attrs["error_type"] == "RuntimeError"
        assert attrs["error_message"] == "boom"

    def test_ring_buffer_bounded(self):
        rec = SpanRecorder(capacity=3)
        for i in range(6):
            with rec.span("s", i=i):
                pass
        spans = rec.dump()
        assert len(spans) == 3
        assert [s["attrs"]["i"] for s in spans] == [3, 4, 5]

    def test_clear(self):
        rec = SpanRecorder()
        with rec.span("s"):
            pass
        rec.clear()
        assert len(rec) == 0

    def test_drain_returns_and_clears(self):
        rec = SpanRecorder()
        with rec.span("a"):
            pass
        drained = rec.drain()
        assert [s["name"] for s in drained] == ["a"]
        assert len(rec) == 0
        assert rec.dump() == []

    def test_record_adopts_foreign_span(self):
        rec = SpanRecorder()
        rec.record({"name": "ingest", "trace_id": "t1", "shard": 2})
        assert rec.dump()[0]["shard"] == 2


class TestTraceContext:
    def test_no_context_by_default(self):
        assert current_trace() is None

    def test_trace_scope_sets_and_restores(self):
        with trace_scope({"trace_id": "t1", "span_id": "s1"}):
            assert current_trace() == {"trace_id": "t1", "span_id": "s1"}
            with trace_scope({"trace_id": "t2"}):
                assert current_trace()["trace_id"] == "t2"
            assert current_trace()["trace_id"] == "t1"
        assert current_trace() is None

    def test_none_scope_is_noop(self):
        with trace_scope(None):
            assert current_trace() is None
        with trace_scope({"span_id": "orphan"}):  # no trace_id: no-op
            assert current_trace() is None

    def test_span_without_context_has_no_trace(self):
        rec = SpanRecorder()
        with rec.span("s"):
            pass
        span = rec.dump()[0]
        assert span["trace_id"] is None
        assert span["parent_id"] is None
        assert span["span_id"]

    def test_span_joins_active_trace_and_nests(self):
        rec = SpanRecorder()
        with trace_scope({"trace_id": "t1"}):
            with rec.span("outer"):
                with rec.span("inner"):
                    pass
        inner, outer = rec.dump()  # inner closes first
        assert inner["name"] == "inner"
        assert outer["trace_id"] == inner["trace_id"] == "t1"
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None

    def test_open_span_is_captured_as_parent(self):
        # what ExecBackend.submit does: capture inside an open span
        rec = SpanRecorder()
        with trace_scope({"trace_id": "t1"}):
            with rec.span("dispatch"):
                captured = current_trace()
        span = rec.dump()[0]
        assert captured == {"trace_id": "t1", "span_id": span["span_id"]}

    def test_new_trace_ids_unique(self):
        ids = {new_trace_id() for _ in range(256)}
        assert len(ids) == 256


class TestFilterSpans:
    SPANS = [
        {"name": "round", "trace_id": "t1"},
        {"name": "ingest", "trace_id": "t1"},
        {"name": "ingest", "trace_id": "t2"},
        {"name": "merge", "trace_id": None},
    ]

    def test_name_filter(self):
        assert len(filter_spans(self.SPANS, name="ingest")) == 2

    def test_trace_id_filter(self):
        out = filter_spans(self.SPANS, trace_id="t1")
        assert [s["name"] for s in out] == ["round", "ingest"]

    def test_combined_and_limit_keeps_newest(self):
        out = filter_spans(self.SPANS, name="ingest", trace_id="t2")
        assert len(out) == 1
        assert filter_spans(self.SPANS, limit=2) == self.SPANS[2:]
        assert filter_spans(self.SPANS, limit=0) == []

    def test_no_filters_pass_through(self):
        assert filter_spans(self.SPANS) == self.SPANS
