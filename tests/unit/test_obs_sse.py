"""SSE framing and the standing-query bookkeeping (hub, replay ring)."""

import asyncio
import json

import pytest

from repro.obs import Subscription, SubscriptionHub, render_sse_event
from repro.obs.tracing import SpanRecorder


class TestRenderSseEvent:
    def test_minimal_frame(self):
        assert render_sse_event("hi") == "data: hi\n\n"

    def test_full_frame_field_order(self):
        frame = render_sse_event("x", event="delta", id=7, retry=3000)
        assert frame == "retry: 3000\nevent: delta\nid: 7\ndata: x\n\n"

    def test_multiline_data_split(self):
        frame = render_sse_event('{"a":\n1}', event="delta")
        assert frame == 'event: delta\ndata: {"a":\ndata: 1}\n\n'

    def test_blank_line_terminator(self):
        assert render_sse_event("x").endswith("\n\n")

    def test_newlines_rejected_in_fields(self):
        with pytest.raises(ValueError):
            render_sse_event("x", event="a\nb")
        with pytest.raises(ValueError):
            render_sse_event("x", id="1\r2")


class TestSubscription:
    def _sub(self):
        return Subscription("abc123", {"kind": "query", "job": "j"})

    def test_ids_monotonic_from_one(self):
        sub = self._sub()
        loop = asyncio.new_event_loop()
        try:
            asyncio.set_event_loop(loop)
            assert sub.publish({"v": 1}) == 1
            assert sub.publish({"v": 2}) == 2
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    def test_replay_after_filters_by_id(self):
        sub = self._sub()
        loop = asyncio.new_event_loop()
        try:
            asyncio.set_event_loop(loop)
            for v in range(5):
                sub.publish({"v": v})
        finally:
            asyncio.set_event_loop(None)
            loop.close()
        frames = sub.replay_after(3)
        assert [fid for fid, _, _ in frames] == [4, 5]
        assert json.loads(frames[0][2]) == {"v": 3}

    def test_replay_ring_bounded(self):
        sub = Subscription("x", {}, replay=3)
        loop = asyncio.new_event_loop()
        try:
            asyncio.set_event_loop(loop)
            for v in range(10):
                sub.publish({"v": v})
        finally:
            asyncio.set_event_loop(None)
            loop.close()
        assert [fid for fid, _, _ in sub.replay_after(0)] == [8, 9, 10]

    def test_publish_fans_out_to_listeners(self):
        async def run():
            sub = self._sub()
            q1, q2 = sub.attach_listener(), sub.attach_listener()
            sub.publish({"v": 1}, event="delta")
            f1, f2 = q1.get_nowait(), q2.get_nowait()
            assert f1 == f2
            assert f1[1] == "delta"
            sub.detach_listener(q1)
            sub.publish({"v": 2})
            assert q1.empty()
            assert q2.qsize() == 1

        asyncio.run(run())

    def test_never_evaluated_flag(self):
        sub = self._sub()
        assert sub.never_evaluated
        sub.last_value = None  # None is a legitimate evaluated value
        assert not sub.never_evaluated

    def test_describe(self):
        sub = self._sub()
        info = sub.describe()
        assert info["id"] == "abc123"
        assert info["spec"]["kind"] == "query"
        assert info["listeners"] == 0
        assert info["events_delivered"] == 0


class TestSubscriptionHub:
    def test_subscribe_get_unsubscribe(self):
        hub = SubscriptionHub()
        sub = hub.subscribe({"kind": "query"})
        assert hub.get(sub.sid) is sub
        assert len(hub) == 1
        assert hub.unsubscribe(sub.sid)
        assert hub.get(sub.sid) is None
        assert not hub.unsubscribe(sub.sid)

    def test_cap_enforced(self):
        hub = SubscriptionHub(max_subscriptions=2)
        hub.subscribe({})
        hub.subscribe({})
        with pytest.raises(OverflowError):
            hub.subscribe({})

    def test_all_lists_subscriptions(self):
        hub = SubscriptionHub()
        a, b = hub.subscribe({}), hub.subscribe({})
        assert {s.sid for s in hub.all()} == {a.sid, b.sid}


class TestSpanRecorder:
    def test_span_records_duration_and_attrs(self):
        rec = SpanRecorder()
        with rec.span("dispatch", events=10) as attrs:
            attrs["extra"] = 1
        spans = rec.dump()
        assert len(spans) == 1
        span = spans[0]
        assert span["name"] == "dispatch"
        assert span["attrs"] == {"events": 10, "extra": 1}
        assert span["duration_s"] >= 0.0

    def test_span_records_error(self):
        rec = SpanRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("merge"):
                raise RuntimeError("boom")
        assert rec.dump()[0]["attrs"]["error"] == "RuntimeError: boom"

    def test_ring_buffer_bounded(self):
        rec = SpanRecorder(capacity=3)
        for i in range(6):
            with rec.span("s", i=i):
                pass
        spans = rec.dump()
        assert len(spans) == 3
        assert [s["attrs"]["i"] for s in spans] == [3, 4, 5]

    def test_clear(self):
        rec = SpanRecorder()
        with rec.span("s"):
            pass
        rec.clear()
        assert len(rec) == 0
