"""Unit tests for the frequency-tracking protocols (Section 3)."""

import math
import statistics

import pytest

from repro import (
    DeterministicFrequencyScheme,
    RandomizedFrequencyScheme,
    Simulation,
)
from repro.workloads import single_site, uniform_sites, with_items, zipf_items

from ..conftest import run_frequency


class TestRandomizedFrequency:
    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            RandomizedFrequencyScheme(0.0)

    def test_exact_while_p_is_one(self):
        k, eps = 16, 0.05
        sim = Simulation(RandomizedFrequencyScheme(eps), k, seed=0)
        stream = [(i % k, "x" if i % 3 else "y") for i in range(30)]
        truth = {}
        for site_id, item in stream:
            sim.process(site_id, item)
            truth[item] = truth.get(item, 0) + 1
            for j in ("x", "y"):
                assert sim.coordinator.estimate_frequency(j) == pytest.approx(
                    truth.get(j, 0)
                )

    def test_heavy_items_tracked(self):
        eps, n, k = 0.05, 60_000, 16
        sim, truth = run_frequency(RandomizedFrequencyScheme(eps), n, k)
        for item in range(5):  # Zipf head
            est = sim.coordinator.estimate_frequency(item)
            assert abs(est - truth[item]) <= 3 * eps * n

    def test_absent_item_near_zero(self):
        eps, n, k = 0.05, 30_000, 9
        sim, _ = run_frequency(RandomizedFrequencyScheme(eps), n, k)
        est = sim.coordinator.estimate_frequency("never-seen")
        assert abs(est) <= 2 * eps * n

    def test_estimator_unbiased_across_seeds(self):
        eps, n, k, runs = 0.1, 10_000, 9, 40
        estimates = []
        truth_value = None
        for seed in range(runs):
            sim, truth = run_frequency(
                RandomizedFrequencyScheme(eps), n, k, seed=seed, stream_seed=11
            )
            truth_value = truth[0]
            estimates.append(sim.coordinator.estimate_frequency(0))
        mean = statistics.mean(estimates)
        sem = statistics.stdev(estimates) / math.sqrt(runs)
        assert abs(mean - truth_value) <= 4 * sem + 0.01 * n

    def test_heavy_hitters_query(self):
        eps, n, k = 0.02, 50_000, 9
        sim, truth = run_frequency(
            RandomizedFrequencyScheme(eps), n, k, alpha=1.5
        )
        hh = sim.coordinator.heavy_hitters(0.1)
        # Item 0 holds a large share under Zipf(1.5).
        assert truth[0] / n > 0.2
        assert 0 in hh

    def test_site_space_bounded_by_virtual_sites(self):
        eps, n, k = 0.02, 80_000, 16
        sim, _ = run_frequency(RandomizedFrequencyScheme(eps), n, k)
        # Theory: O(1/(eps sqrt(k))) words = 12.5; allow constants.
        bound = 20 / (eps * math.sqrt(k))
        assert sim.space.max_site_words <= bound

    def test_virtual_sites_cap_space_on_skew(self):
        eps, n, k = 0.05, 40_000, 16
        items = zipf_items(100, seed=5)
        stream = list(
            with_items(single_site(n, k, site_id=0), items)
        )
        capped = Simulation(RandomizedFrequencyScheme(eps), k, seed=1)
        capped.run(stream)
        uncapped = Simulation(
            RandomizedFrequencyScheme(eps, virtual_sites=False), k, seed=1
        )
        uncapped.run(stream)
        assert (
            capped.space.max_words_per_site[0]
            < uncapped.space.max_words_per_site[0]
        )

    def test_round_restart_clears_site_memory(self):
        eps, k = 0.05, 9
        sim = Simulation(RandomizedFrequencyScheme(eps), k, seed=0)
        sim.run(uniform_sites(5_000, k, seed=2))
        # After many rounds, site sticky lists only hold current-round items.
        for site in sim.sites:
            assert site.sticky.n <= site.doubler.n


class TestDeterministicFrequency:
    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            DeterministicFrequencyScheme(2.0)

    def test_never_overcounts(self):
        eps, n, k = 0.05, 30_000, 9
        sim, truth = run_frequency(DeterministicFrequencyScheme(eps), n, k)
        for item in list(truth)[:50]:
            assert sim.coordinator.estimate_frequency(item) <= truth[item]

    def test_undercount_within_eps_n(self):
        eps, n, k = 0.05, 30_000, 9
        sim, truth = run_frequency(DeterministicFrequencyScheme(eps), n, k)
        for item in range(20):
            est = sim.coordinator.estimate_frequency(item)
            assert truth[item] - est <= eps * n

    def test_exact_counts_mode(self):
        eps, n, k = 0.05, 20_000, 9
        sim, truth = run_frequency(
            DeterministicFrequencyScheme(eps, exact_counts=True), n, k
        )
        for item in range(10):
            est = sim.coordinator.estimate_frequency(item)
            assert truth[item] - est <= eps * n
            assert est <= truth[item]

    def test_site_space_bounded(self):
        eps, n, k = 0.05, 40_000, 9
        sim, _ = run_frequency(DeterministicFrequencyScheme(eps), n, k)
        # MG capacity 8/eps = 160 counters -> space O(1/eps) words.
        assert sim.space.max_site_words <= 8 * (8 / eps)

    def test_heavy_hitters_query(self):
        eps, n, k = 0.02, 50_000, 9
        sim, truth = run_frequency(
            DeterministicFrequencyScheme(eps), n, k, alpha=1.5
        )
        hh = sim.coordinator.heavy_hitters(0.1)
        assert 0 in hh

    def test_randomized_cheaper_than_deterministic(self):
        eps, n, k = 0.01, 100_000, 36
        rand, _ = run_frequency(RandomizedFrequencyScheme(eps), n, k)
        det, _ = run_frequency(DeterministicFrequencyScheme(eps), n, k)
        assert rand.comm.total_words < det.comm.total_words / 2


class TestEstimatorAblation:
    def test_biased_estimator_skips_sample_stream(self):
        eps, n, k = 0.05, 20_000, 16
        biased = RandomizedFrequencyScheme(eps, sample_correction=False)
        sim, _ = run_frequency(biased, n, k)
        # No d-stream messages at all.
        assert all(not d for d in sim.coordinator.dcounts.values())

    def test_biased_estimator_negatively_biased_on_spread_items(self):
        # Many items with frequency ~ eps*n/sqrt(k) spread over all sites:
        # estimator (2) misses the -d/p correction and undershoots on
        # average; estimator (4) stays unbiased.  We compare the total
        # estimate mass over all items, where the per-item bias adds up.
        eps, k, runs = 0.1, 16, 12
        universe = 60
        n = 30_000
        bias_sum = {True: 0.0, False: 0.0}
        for corrected in (True, False):
            for seed in range(runs):
                scheme = RandomizedFrequencyScheme(
                    eps, sample_correction=corrected
                )
                sim = Simulation(scheme, k, seed=seed)
                stream = (
                    (t % k, t % universe) for t in range(n)
                )
                sim.run(stream)
                total_est = sum(
                    sim.coordinator.estimate_frequency(j)
                    for j in range(universe)
                )
                bias_sum[corrected] += total_est - n
        mean_bias_corrected = bias_sum[True] / runs
        mean_bias_biased = bias_sum[False] / runs
        # The uncorrected estimator overshoots the corrected one markedly
        # (its conditional branch drops the negative correction term).
        assert mean_bias_biased > mean_bias_corrected
        assert abs(mean_bias_corrected) < abs(mean_bias_biased)
