"""Unit tests for the lower-bound experiment modules."""

import math

import pytest

from repro.lowerbounds import (
    OneWayThresholdScheme,
    exact_probe_success,
    figure1_curve,
    hypergeometric_error,
    measure_on_mu,
    min_probes_for_success,
    normal_error,
    sample_instance,
    threshold_probe_success,
)
from repro.runtime.rng import derive_rng


class TestOneBitInstances:
    def test_instance_shape(self):
        inst = sample_instance(16, derive_rng(0, "ob"))
        assert len(inst.bits) == 16
        assert sum(inst.bits) == inst.s
        assert inst.s in (8 + 4, 8 - 4)

    def test_high_flag_matches_s(self):
        for seed in range(20):
            inst = sample_instance(25, derive_rng(seed, "ob2"))
            assert inst.high == (inst.s == 12 + 5)

    def test_rejects_small_k(self):
        with pytest.raises(ValueError):
            sample_instance(2, derive_rng(0, "ob3"))


class TestProbeSuccess:
    def test_validates_z(self):
        with pytest.raises(ValueError):
            exact_probe_success(16, 0)
        with pytest.raises(ValueError):
            threshold_probe_success(16, 20)

    def test_full_probe_high_success(self):
        # Probing all k sites reveals s exactly -> near-certain success.
        assert exact_probe_success(64, 64) > 0.99

    def test_tiny_probe_near_half(self):
        assert exact_probe_success(400, 2) < 0.62

    def test_success_monotone_in_z(self):
        k = 100
        values = [exact_probe_success(k, z) for z in (5, 25, 50, 100)]
        assert values == sorted(values)

    def test_empirical_matches_exact(self):
        k, z = 64, 32
        exact = exact_probe_success(k, z)
        empirical = threshold_probe_success(k, z, trials=4000, seed=1)
        assert abs(empirical - exact) < 0.04

    def test_min_probes_linear_in_k(self):
        # Claim A.1: reaching 0.8 success needs z = Omega(k).
        fractions = []
        for k in (64, 144, 256):
            z = min_probes_for_success(k, target=0.8)
            fractions.append(z / k)
        # The required fraction of sites probed stays bounded away from 0
        # and does not vanish as k grows (empirically ~0.15).
        assert min(fractions) > 0.1
        assert max(fractions) / min(fractions) < 1.3


class TestFigure1:
    def test_normal_error_structure(self):
        fig = normal_error(100, 20)
        assert fig.mu1 < fig.x0 < fig.mu2
        assert fig.sigma1 == fig.sigma2 > 0
        assert 0 < fig.error <= 0.5

    def test_error_near_half_for_small_z(self):
        # z = o(k): both tests fail ~half the time (Claim A.1).
        assert normal_error(10_000, 10).error > 0.45
        assert hypergeometric_error(10_000, 10) > 0.45

    def test_error_decreases_with_z(self):
        k = 256
        errs = [hypergeometric_error(k, z) for z in (8, 64, 256)]
        assert errs[0] > errs[1] > errs[2]

    def test_normal_approximates_hypergeometric(self):
        k = 400
        for z in (50, 150):
            approx = normal_error(k, z).error
            exact = hypergeometric_error(k, z)
            assert abs(approx - exact) < 0.06

    def test_figure1_curve_rows(self):
        rows = figure1_curve(100, [10, 50, 100])
        assert len(rows) == 3
        assert all(len(r) == 3 for r in rows)


class TestOneWay:
    def test_one_way_scheme_runs_without_downlink(self):
        stats = measure_on_mu(
            OneWayThresholdScheme(0.1), k=8, n=4_000, draws=3, one_way=True
        )
        assert stats["mean_messages"] > 0
        assert stats["worst_final_error"] <= 0.1 + 0.01

    def test_jittered_variant_also_tracks(self):
        stats = measure_on_mu(
            OneWayThresholdScheme(0.1, jitter=True), k=8, n=4_000, draws=3,
            one_way=True,
        )
        assert stats["worst_final_error"] <= 0.2

    def test_one_way_cost_near_deterministic(self):
        # Theorem 2.2: randomization cannot beat k/eps log N one-way.
        eps, k, n = 0.05, 16, 20_000
        det = measure_on_mu(OneWayThresholdScheme(eps), k, n, draws=4, one_way=True)
        jit = measure_on_mu(
            OneWayThresholdScheme(eps, jitter=True), k, n, draws=4, one_way=True
        )
        ratio = jit["mean_messages"] / det["mean_messages"]
        assert 0.5 < ratio < 2.0

    def test_two_way_randomized_beats_one_way_on_round_robin(self):
        # Case (b) of the hard distribution, taken deterministically:
        # one-way protocols pay ~k/eps log(N/k) while the two-way
        # randomized tracker pays ~sqrt(k)/eps log N.
        from repro import RandomizedCountScheme, Simulation
        from repro.workloads import round_robin

        eps, k, n = 0.01, 64, 60_000
        one_way = Simulation(OneWayThresholdScheme(eps), k, one_way=True)
        one_way.run(round_robin(n, k))
        two_way = Simulation(RandomizedCountScheme(eps), k, seed=1)
        two_way.run(round_robin(n, k))
        assert (
            two_way.comm.total_messages < one_way.comm.total_messages / 2
        )
