"""Unit tests for the shared round machinery (Section 2.1 scaffolding)."""

import math

import pytest

from repro.core.rounds import (
    GlobalCountTracker,
    LocalDoubler,
    floor_pow2,
    report_probability,
)


class TestFloorPow2:
    def test_exact_powers(self):
        assert floor_pow2(1) == 1
        assert floor_pow2(2) == 2
        assert floor_pow2(8) == 8

    def test_between_powers(self):
        assert floor_pow2(3) == 2
        assert floor_pow2(7.9) == 4
        assert floor_pow2(1023) == 512

    def test_rejects_below_one(self):
        with pytest.raises(ValueError):
            floor_pow2(0.5)


class TestReportProbability:
    def test_one_in_early_phase(self):
        # n_bar <= sqrt(k)/eps keeps p = 1.
        assert report_probability(10, k=100, eps=0.1) == 1.0
        assert report_probability(100, k=100, eps=0.1) == 1.0

    def test_inverse_power_of_two(self):
        p = report_probability(100_000, k=16, eps=0.01)
        assert 0 < p <= 1
        assert math.log2(1 / p) == int(math.log2(1 / p))

    def test_scales_inversely_with_n(self):
        p1 = report_probability(10_000, k=16, eps=0.05)
        p2 = report_probability(80_000, k=16, eps=0.05)
        assert p2 < p1
        # An 8x n growth halves p three times.
        assert p1 / p2 == 8.0

    def test_matches_schedule_formula(self):
        k, eps, n_bar = 25, 0.02, 50_000
        expected = 1.0 / floor_pow2(eps * n_bar / math.sqrt(k))
        assert report_probability(n_bar, k, eps) == expected

    def test_monotone_in_n_bar(self):
        k, eps = 9, 0.1
        last = 1.0
        for n_bar in range(1, 5000, 37):
            p = report_probability(n_bar, k, eps)
            assert p <= last + 1e-12
            last = p


class TestLocalDoubler:
    def test_first_element_reports(self):
        d = LocalDoubler()
        assert d.increment() == 1

    def test_reports_on_doubling(self):
        d = LocalDoubler()
        reports = [d.increment() for _ in range(100)]
        values = [r for r in reports if r is not None]
        assert values == [1, 2, 4, 8, 16, 32, 64]

    def test_report_count_logarithmic(self):
        d = LocalDoubler()
        reports = sum(1 for _ in range(10_000) if d.increment() is not None)
        assert reports == 1 + math.floor(math.log2(10_000))

    def test_space_constant(self):
        d = LocalDoubler()
        for _ in range(1000):
            d.increment()
        assert d.space_words() == 2


class TestGlobalCountTracker:
    def test_first_report_broadcasts(self):
        t = GlobalCountTracker()
        assert t.update(0, 1) == 1

    def test_broadcast_on_doubling_only(self):
        t = GlobalCountTracker()
        t.update(0, 1)  # n' = 1, broadcast
        assert t.update(1, 1) == 2  # n' = 2 >= 2*1, broadcast
        assert t.update(0, 2) is None  # n' = 3 < 4
        assert t.update(1, 2) == 4  # n' = 4, broadcast

    def test_n_prime_is_sum_of_last_reports(self):
        t = GlobalCountTracker()
        t.update(0, 4)
        t.update(1, 8)
        t.update(0, 16)
        assert t.n_prime == 24

    def test_within_factor_two_of_true_count(self):
        # Simulate: each site reports on local doubling; n' always within
        # a factor 2 of the truth, n_bar within a factor 4.
        t = GlobalCountTracker()
        doublers = [LocalDoubler() for _ in range(5)]
        n = 0
        for i in range(2000):
            d = doublers[i % 5]
            n += 1
            r = d.increment()
            if r is not None:
                t.update(i % 5, r)
            assert t.n_prime > n / 2 - 1
            assert t.n_prime <= n
            assert t.n_bar <= n

    def test_broadcast_count_logarithmic(self):
        t = GlobalCountTracker()
        doubler = LocalDoubler()
        broadcasts = 0
        for _ in range(100_000):
            r = doubler.increment()
            if r is not None and t.update(0, r) is not None:
                broadcasts += 1
        assert broadcasts <= 2 + math.log2(100_000)
