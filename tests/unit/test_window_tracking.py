"""Unit tests for the exponential histogram and windowed count tracking."""

import pytest

from repro.core.window import WindowedCountScheme
from repro.runtime import Simulation
from repro.sketch.exponential_histogram import ExponentialHistogram


class TestExponentialHistogram:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ExponentialHistogram(0, 0.1)
        with pytest.raises(ValueError):
            ExponentialHistogram(10, 0.0)

    def test_rejects_time_travel(self):
        eh = ExponentialHistogram(10, 0.1)
        eh.add(5)
        with pytest.raises(ValueError):
            eh.add(4)

    def test_empty_estimate(self):
        eh = ExponentialHistogram(10, 0.1)
        assert eh.estimate() == 0.0
        assert eh.estimate(100) == 0.0

    def test_exact_for_small_counts(self):
        eh = ExponentialHistogram(100, 0.2)
        for t in range(5):
            eh.add(t)
        # With few events, buckets are all size 1 except maybe merging;
        # the estimate stays within the eps bound trivially.
        assert 4.0 <= eh.estimate(4) <= 5.0

    def test_relative_error_bound(self):
        window, eps = 500, 0.1
        eh = ExponentialHistogram(window, eps)
        for t in range(5_000):
            eh.add(t)
            if t >= window and t % 97 == 0:
                estimate = eh.estimate(t)
                # True window count is exactly `window`.
                assert abs(estimate - window) <= 2 * eps * window

    def test_full_expiry(self):
        eh = ExponentialHistogram(10, 0.2)
        for t in range(20):
            eh.add(t)
        assert eh.estimate(100) == 0.0

    def test_partial_expiry_decay(self):
        eh = ExponentialHistogram(100, 0.1)
        for t in range(100):
            eh.add(t)
        full = eh.estimate(99)
        later = eh.estimate(149)  # half the window has aged out
        assert later < full
        assert abs(later - 50) <= 20

    def test_bucket_count_logarithmic(self):
        eps = 0.1
        eh = ExponentialHistogram(10_000, eps)
        for t in range(10_000):
            eh.add(t)
        import math

        bound = (math.ceil(1 / eps) + 1) * (math.log2(10_000) + 2)
        assert len(eh.buckets) <= bound

    def test_snapshot_evaluation_matches_live(self):
        eh = ExponentialHistogram(200, 0.1)
        for t in range(400):
            eh.add(t)
        snap = eh.snapshot()
        for now in (399, 450, 500, 700):
            assert ExponentialHistogram.estimate_from_snapshot(
                snap, now, 200
            ) == pytest.approx(eh.estimate(now))

    def test_bursty_gaps(self):
        eh = ExponentialHistogram(50, 0.1)
        for t in list(range(10)) + list(range(100, 140)):
            eh.add(t)
        # At t=139 the window (89, 139] holds exactly the 40 burst events.
        assert abs(eh.estimate(139) - 40) <= 8


class TestWindowedCountScheme:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            WindowedCountScheme(0, 0.1)
        with pytest.raises(ValueError):
            WindowedCountScheme(100, 1.5)

    def _run(self, timestamps_by_site, window, eps=0.1, k=4):
        sim = Simulation(WindowedCountScheme(window, eps), k, seed=0)
        merged = sorted(
            (t, s) for s, ts in enumerate(timestamps_by_site) for t in ts
        )
        for t, s in merged:
            sim.process(s, t)
        return sim

    def test_steady_state_accuracy(self):
        window, k = 1_000, 4
        # One event per time unit, round-robin across sites.
        sim = Simulation(WindowedCountScheme(window, 0.1), k, seed=0)
        for t in range(10_000):
            sim.process(t % k, t)
        estimate = sim.coordinator.estimate(9_999)
        assert abs(estimate - window) <= 0.25 * window

    def test_decay_without_arrivals(self):
        window, k = 500, 3
        sim = Simulation(WindowedCountScheme(window, 0.1), k, seed=0)
        for t in range(1_000):
            sim.process(t % k, t)
        at_end = sim.coordinator.estimate(999)
        faded = sim.coordinator.estimate(999 + window // 2)
        gone = sim.coordinator.estimate(999 + 2 * window)
        assert faded < at_end
        assert gone == 0.0

    def test_decay_costs_no_messages(self):
        window, k = 500, 3
        sim = Simulation(WindowedCountScheme(window, 0.1), k, seed=0)
        for t in range(1_000):
            sim.process(t % k, t)
        before = sim.comm.total_messages
        sim.coordinator.estimate(999 + window)
        assert sim.comm.total_messages == before

    def test_one_way_capable(self):
        sim = Simulation(WindowedCountScheme(100, 0.1), 3, seed=0, one_way=True)
        for t in range(500):
            sim.process(t % 3, t)
        assert sim.comm.downlink_messages == 0
        assert sim.comm.broadcast_messages == 0

    def test_communication_logarithmic_in_growth(self):
        # Reports fire on (1+eps/2) growth of the window count, which
        # saturates once the window is full: messages stay modest.
        window, k = 1_000, 4
        sim = Simulation(WindowedCountScheme(window, 0.1), k, seed=0)
        for t in range(20_000):
            sim.process(t % k, t)
        # Snapshot ships: O(k * log(window)/eps)-ish, far below n.
        assert sim.comm.uplink_messages < 2_000

    def test_skewed_sites(self):
        window = 400
        sim = Simulation(WindowedCountScheme(window, 0.1), 4, seed=0)
        for t in range(4_000):
            sim.process(0 if t % 4 else 1, t)  # sites 2,3 idle
        estimate = sim.coordinator.estimate(3_999)
        assert abs(estimate - window) <= 0.3 * window
