"""Unit tests for the seeded RNG utilities."""

import math

import pytest

from repro.runtime.rng import coin, derive_rng, geometric_failures, trailing_level


class TestDeriveRng:
    def test_same_path_same_stream(self):
        a = derive_rng(42, "site", 3)
        b = derive_rng(42, "site", 3)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_paths_differ(self):
        a = derive_rng(42, "site", 3)
        b = derive_rng(42, "site", 4)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = derive_rng(1, "x")
        b = derive_rng(2, "x")
        assert a.random() != b.random()

    def test_path_types_mix(self):
        # Ints and strings in paths are both usable and distinct.
        a = derive_rng(0, 1, "a")
        b = derive_rng(0, "1", "a")
        assert a.random() == derive_rng(0, 1, "a").random()
        assert isinstance(b.random(), float)


class TestCoin:
    def test_p_one_always_true(self):
        rng = derive_rng(0, "coin")
        assert all(coin(rng, 1.0) for _ in range(100))

    def test_p_zero_always_false(self):
        rng = derive_rng(0, "coin")
        assert not any(coin(rng, 0.0) for _ in range(100))

    def test_p_above_one_true(self):
        rng = derive_rng(0, "coin")
        assert coin(rng, 1.5)

    def test_empirical_rate(self):
        rng = derive_rng(0, "coin-rate")
        hits = sum(coin(rng, 0.3) for _ in range(20000))
        assert abs(hits / 20000 - 0.3) < 0.02


class TestGeometricFailures:
    def test_p_one_is_zero(self):
        rng = derive_rng(0, "geom")
        assert geometric_failures(rng, 1.0) == 0

    def test_rejects_zero_p(self):
        rng = derive_rng(0, "geom")
        with pytest.raises(ValueError):
            geometric_failures(rng, 0.0)

    def test_mean_matches_geometric(self):
        rng = derive_rng(0, "geom-mean")
        p = 0.2
        n = 20000
        mean = sum(geometric_failures(rng, p) for _ in range(n)) / n
        # Mean of failures-before-success is (1-p)/p = 4.
        assert abs(mean - (1 - p) / p) < 0.15

    def test_nonnegative(self):
        rng = derive_rng(0, "geom-nn")
        assert all(geometric_failures(rng, 0.5) >= 0 for _ in range(1000))


class TestTrailingLevel:
    def test_distribution_tail(self):
        rng = derive_rng(0, "level")
        n = 20000
        levels = [trailing_level(rng) for _ in range(n)]
        # P(level >= 1) = 1/2, P(level >= 2) = 1/4.
        assert abs(sum(l >= 1 for l in levels) / n - 0.5) < 0.02
        assert abs(sum(l >= 2 for l in levels) / n - 0.25) < 0.02

    def test_mean_is_one(self):
        rng = derive_rng(0, "level-mean")
        n = 20000
        mean = sum(trailing_level(rng) for _ in range(n)) / n
        assert abs(mean - 1.0) < 0.05
