"""Merge primitives behind the cross-shard query plane.

Counts sum (:func:`repro.shard.merge.merge_counts`), frequency
summaries merge (``MisraGries.merge_from`` / ``SpaceSaving.merge_from``)
and quantile summaries merge (``QuantileSketchBuilder.merge_from``) —
each with its error guarantee over the *concatenated* stream, plus the
empty- and single-input edge cases shards produce in practice.
"""

import random

import pytest

from repro.shard.merge import merge_counts
from repro.sketch.mergeable_quantile import QuantileSketchBuilder
from repro.sketch.misra_gries import MisraGries
from repro.sketch.space_saving import SpaceSaving


def zipfish_stream(n, universe, seed):
    rng = random.Random(seed)
    return [min(universe, int(universe / (rng.random() * universe + 1)) + 1)
            for _ in range(n)]


def exact_counts(stream):
    counts = {}
    for v in stream:
        counts[v] = counts.get(v, 0) + 1
    return counts


class TestMergeCounts:
    def test_sums(self):
        assert merge_counts([3.0, 4.0, 5.5]) == 12.5

    def test_empty_is_zero(self):
        assert merge_counts([]) == 0.0

    def test_single_value_passes_through(self):
        assert merge_counts([41.0]) == 41.0


class TestMisraGriesMerge:
    CAP = 16

    def test_merged_error_bound_holds(self):
        a_stream = zipfish_stream(5_000, 200, seed=1)
        b_stream = zipfish_stream(7_000, 200, seed=2)
        a, b = MisraGries(self.CAP), MisraGries(self.CAP)
        for v in a_stream:
            a.add(v)
        for v in b_stream:
            b.add(v)
        a.merge_from(b)
        n = len(a_stream) + len(b_stream)
        assert a.n == n
        bound = n / (self.CAP + 1)
        assert a.error_bound() <= bound
        truth = exact_counts(a_stream + b_stream)
        for item, true_count in truth.items():
            est = a.estimate(item)
            assert est <= true_count  # never overcounts
            assert true_count - est <= bound, item
        assert len(a.counters) <= self.CAP

    def test_merge_from_empty_is_identity(self):
        a, b = MisraGries(4), MisraGries(4)
        for v in [1, 1, 2, 3]:
            a.add(v)
        before = dict(a.counters)
        a.merge_from(b)
        assert a.counters == before and a.n == 4

    def test_merge_into_empty_copies(self):
        a, b = MisraGries(4), MisraGries(4)
        for v in [5, 5, 6]:
            b.add(v)
        a.merge_from(b)
        assert a.counters == {5: 2, 6: 1} and a.n == 3

    def test_capacity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MisraGries(4).merge_from(MisraGries(8))

    def test_merge_order_independent_estimates(self):
        streams = [zipfish_stream(2_000, 50, seed=s) for s in range(3)]
        left = MisraGries(8)
        for stream in streams:
            part = MisraGries(8)
            for v in stream:
                part.add(v)
            left.merge_from(part)
        flat = MisraGries(8)
        for stream in streams:
            for v in stream:
                flat.add(v)
        n = sum(len(s) for s in streams)
        truth = exact_counts([v for s in streams for v in s])
        for item in truth:
            # both are valid summaries of the same stream: estimates
            # differ but each respects the same undercount bound
            for sketch in (left, flat):
                assert truth[item] - sketch.estimate(item) <= n / 9


class TestSpaceSavingMerge:
    CAP = 16

    def test_merged_bounds_hold(self):
        a_stream = zipfish_stream(5_000, 200, seed=3)
        b_stream = zipfish_stream(6_000, 200, seed=4)
        a, b = SpaceSaving(self.CAP), SpaceSaving(self.CAP)
        for v in a_stream:
            a.add(v)
        for v in b_stream:
            b.add(v)
        a.merge_from(b)
        n = len(a_stream) + len(b_stream)
        assert a.n == n
        truth = exact_counts(a_stream + b_stream)
        for item in a.counts:
            true_count = truth.get(item, 0)
            assert a.estimate(item) >= true_count  # never undercounts
            assert a.guaranteed_count(item) <= true_count
            assert a.estimate(item) - true_count <= a.error_bound()
        assert len(a.counts) <= self.CAP

    def test_merge_from_empty_is_identity(self):
        a, b = SpaceSaving(4), SpaceSaving(4)
        for v in [1, 1, 2]:
            a.add(v)
        before = dict(a.counts)
        a.merge_from(b)
        assert a.counts == before and a.n == 3

    def test_merge_into_empty_copies(self):
        a, b = SpaceSaving(4), SpaceSaving(4)
        for v in [7, 7, 8]:
            b.add(v)
        a.merge_from(b)
        assert a.counts == {7: 2, 8: 1} and a.errors == {7: 0, 8: 0}

    def test_capacity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SpaceSaving(4).merge_from(SpaceSaving(5))

    def test_heavy_hitter_survives_merge(self):
        a, b = SpaceSaving(8), SpaceSaving(8)
        for sketch, seed in ((a, 5), (b, 6)):
            rng = random.Random(seed)
            for _ in range(2_000):
                sketch.add(99 if rng.random() < 0.4 else rng.randrange(500))
        a.merge_from(b)
        assert 99 in a.heavy_hitters(0.3 * a.n)


class TestQuantileBuilderMerge:
    def test_merged_rank_accuracy(self):
        rng_a, rng_b = random.Random(7), random.Random(8)
        values = list(range(20_000))
        random.Random(9).shuffle(values)
        a = QuantileSketchBuilder(64, rng_a)
        b = QuantileSketchBuilder(64, rng_b)
        half = len(values) // 2
        for v in values[:half]:
            a.add(v)
        for v in values[half:]:
            b.add(v)
        a.merge_from(b)
        assert a.n == len(values)
        summary = a.finalize()
        assert summary.total_weight == pytest.approx(len(values))
        # std error ~ n/(2.8 m); allow a generous multiple
        for x in (1_000, 10_000, 19_000):
            assert abs(summary.rank(x) - x) <= 6 * len(values) / 64

    def test_merge_empty_builder_is_identity(self):
        rng = random.Random(1)
        a = QuantileSketchBuilder(16, rng)
        for v in range(40):
            a.add(v)
        before = a.rank(20)
        a.merge_from(QuantileSketchBuilder(16, random.Random(2)))
        assert a.n == 40 and a.rank(20) == before

    def test_merge_into_empty_is_lossless_for_short_streams(self):
        a = QuantileSketchBuilder(16, random.Random(3))
        b = QuantileSketchBuilder(16, random.Random(4))
        for v in [3, 1, 2]:
            b.add(v)
        a.merge_from(b)
        summary = a.finalize()
        assert summary.rank(2) == 1.0 and summary.rank(99) == 3.0

    def test_mismatched_buffer_sizes_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketchBuilder(8, random.Random(0)).merge_from(
                QuantileSketchBuilder(16, random.Random(0))
            )
