"""Edge-case suite: degenerate parameters, empty queries, tiny streams.

The paper's model degenerates to the streaming model at k = 1 and to
plain two-party communication at k = 2; the protocols must stay correct
(if not interesting) at the extremes.
"""

import pytest

from repro import (
    DeterministicCountScheme,
    DeterministicFrequencyScheme,
    DeterministicRankScheme,
    DistributedSamplingScheme,
    MedianBoostedScheme,
    RandomizedCountScheme,
    RandomizedFrequencyScheme,
    RandomizedRankScheme,
    Simulation,
)

ALL_COUNT = [
    RandomizedCountScheme,
    DeterministicCountScheme,
    DistributedSamplingScheme,
]


class TestSingleSiteDegeneratesToStreaming:
    """k = 1: the model is the plain streaming model."""

    @pytest.mark.parametrize("scheme_cls", ALL_COUNT)
    def test_count_k1(self, scheme_cls):
        sim = Simulation(scheme_cls(0.1), 1, seed=0)
        for i in range(5_000):
            sim.process(0, 1)
        assert abs(sim.coordinator.estimate() - 5_000) <= 3 * 0.1 * 5_000

    def test_frequency_k1(self):
        sim = Simulation(RandomizedFrequencyScheme(0.1), 1, seed=0)
        for i in range(4_000):
            sim.process(0, i % 7)
        est = sim.coordinator.estimate_frequency(0)
        truth = len(range(0, 4_000, 7))
        assert abs(est - truth) <= 3 * 0.1 * 4_000

    def test_rank_k1(self):
        sim = Simulation(RandomizedRankScheme(0.1), 1, seed=0)
        for v in range(4_000):
            sim.process(0, v)
        assert abs(sim.coordinator.estimate_rank(2_000) - 2_000) <= 1_200


class TestQueriesBeforeData:
    def test_count_empty(self):
        for scheme_cls in ALL_COUNT:
            sim = Simulation(scheme_cls(0.1), 4, seed=0)
            assert sim.coordinator.estimate() == 0.0

    def test_frequency_empty(self):
        for scheme_cls in (RandomizedFrequencyScheme, DeterministicFrequencyScheme):
            sim = Simulation(scheme_cls(0.1), 4, seed=0)
            assert sim.coordinator.estimate_frequency("x") == 0.0
            assert sim.coordinator.heavy_hitters(0.1) == {}
            assert sim.coordinator.top_items(5) == []

    def test_rank_empty(self):
        for scheme_cls in (RandomizedRankScheme, DeterministicRankScheme):
            sim = Simulation(scheme_cls(0.1), 4, seed=0)
            assert sim.coordinator.estimate_rank(42) == 0.0

    def test_rank_quantile_empty_raises(self):
        sim = Simulation(RandomizedRankScheme(0.1), 4, seed=0)
        with pytest.raises(ValueError):
            sim.coordinator.quantile(0.5)


class TestSingleElement:
    def test_count_one_element(self):
        for scheme_cls in ALL_COUNT:
            sim = Simulation(scheme_cls(0.1), 4, seed=0)
            sim.process(2, 1)
            assert sim.coordinator.estimate() == pytest.approx(1.0)

    def test_frequency_one_element(self):
        sim = Simulation(RandomizedFrequencyScheme(0.1), 4, seed=0)
        sim.process(1, "only")
        assert sim.coordinator.estimate_frequency("only") == pytest.approx(1.0)

    def test_rank_one_element(self):
        sim = Simulation(RandomizedRankScheme(0.1), 4, seed=0)
        sim.process(0, 10)
        assert sim.coordinator.estimate_rank(11) == pytest.approx(1.0)
        assert sim.coordinator.estimate_rank(10) == pytest.approx(0.0)
        assert sim.coordinator.quantile(0.5) == 10


class TestExtremeEpsilon:
    def test_near_one_epsilon(self):
        # eps close to 1: very loose tracking, still sane.
        sim = Simulation(RandomizedCountScheme(0.9), 4, seed=0)
        for i in range(2_000):
            sim.process(i % 4, 1)
        assert sim.coordinator.estimate() >= 0

    def test_tiny_epsilon_small_stream(self):
        # eps so small that p never leaves 1: tracking is exact.
        sim = Simulation(RandomizedCountScheme(0.001), 4, seed=0)
        for i in range(500):
            sim.process(i % 4, 1)
        assert sim.coordinator.estimate() == 500.0


class TestBoostedEdges:
    def test_boosted_empty(self):
        scheme = MedianBoostedScheme(RandomizedCountScheme(0.1), 3)
        sim = Simulation(scheme, 3, seed=0)
        assert sim.coordinator.estimate() == 0.0

    def test_boosted_single_copy(self):
        scheme = MedianBoostedScheme(RandomizedCountScheme(0.1), 1)
        sim = Simulation(scheme, 3, seed=0)
        for i in range(1_000):
            sim.process(i % 3, 1)
        assert abs(sim.coordinator.estimate() - 1_000) <= 300


class TestNonNumericItems:
    def test_frequency_with_string_items(self):
        sim = Simulation(RandomizedFrequencyScheme(0.1), 3, seed=0)
        for i in range(3_000):
            sim.process(i % 3, f"key-{i % 5}")
        est = sim.coordinator.estimate_frequency("key-0")
        assert abs(est - 600) <= 900

    def test_rank_with_float_values(self):
        sim = Simulation(RandomizedRankScheme(0.1), 3, seed=0)
        for i in range(3_000):
            sim.process(i % 3, i * 0.5)
        mid = sim.coordinator.estimate_rank(750.0)
        assert abs(mid - 1_500) <= 900

    def test_rank_with_tuple_values(self):
        # Tie-breaking by (value, uid) pairs — the paper's reduction from
        # frequency to rank requires ordered tuples to work.
        sim = Simulation(RandomizedRankScheme(0.1), 3, seed=0)
        for i in range(2_000):
            sim.process(i % 3, (i % 10, i))
        low = sim.coordinator.estimate_rank((5, -1))
        assert abs(low - 1_000) <= 600


class TestDuplicateHeavyStreams:
    def test_count_all_same_site_same_item(self):
        sim = Simulation(RandomizedCountScheme(0.05), 8, seed=1)
        for _ in range(20_000):
            sim.process(5, "same")
        assert abs(sim.coordinator.estimate() - 20_000) <= 3_000

    def test_frequency_single_item_stream(self):
        sim = Simulation(RandomizedFrequencyScheme(0.05), 8, seed=1)
        for i in range(20_000):
            sim.process(i % 8, "hot")
        est = sim.coordinator.estimate_frequency("hot")
        assert abs(est - 20_000) <= 3_000

    def test_rank_constant_stream(self):
        sim = Simulation(RandomizedRankScheme(0.05), 8, seed=1)
        for i in range(10_000):
            sim.process(i % 8, 7)
        assert sim.coordinator.estimate_rank(7) == pytest.approx(0.0, abs=1e-6)
        assert abs(sim.coordinator.estimate_rank(8) - 10_000) <= 1_500
