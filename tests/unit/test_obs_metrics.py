"""The metrics core: instruments, families, registry, Prometheus text.

The renderer test is a golden-file comparison — the exposition format
is a wire protocol (Prometheus text 0.0.4), so the exact bytes matter:
HELP/TYPE ordering, label escaping, cumulative histogram buckets with a
closing ``+Inf``, and a trailing newline.
"""

import math

import pytest

from repro.obs import MetricsRegistry, render_prometheus
from repro.obs.metrics import (
    DEFAULT_MAX_CHILDREN,
    OVERFLOW_LABEL,
    Counter,
    Gauge,
    Histogram,
)
from repro.obs.prometheus import CONTENT_TYPE


class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(4.5)
        assert c.sample() == 5.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.sample() == 7.0

    def test_gauge_function_overrides_stored_value(self):
        g = Gauge()
        g.set(1)
        g.set_function(lambda: 42)
        assert g.sample() == 42.0

    def test_gauge_function_failure_falls_back(self):
        g = Gauge()
        g.set(7)

        def boom():
            raise RuntimeError("collector died")

        g.set_function(boom)
        assert g.sample() == 7.0

    def test_histogram_buckets_cumulative(self):
        h = Histogram([1.0, 5.0, 10.0])
        for value in (0.5, 0.7, 3.0, 20.0):
            h.observe(value)
        sampled = h.sample()
        assert sampled["buckets"] == [(1.0, 2), (5.0, 3), (10.0, 3)]
        assert sampled["count"] == 4
        assert sampled["sum"] == pytest.approx(24.2)

    def test_histogram_boundary_counts_le(self):
        h = Histogram([1.0, 2.0])
        h.observe(1.0)  # le="1.0" includes exactly 1.0
        assert h.sample()["buckets"][0] == (1.0, 1)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram([1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram([2.0, 1.0])


class TestRegistry:
    def test_family_get_or_create_idempotent(self):
        r = MetricsRegistry()
        a = r.counter("x_total", "help.", ["l"])
        b = r.counter("x_total", "help.", ["l"])
        assert a is b

    def test_family_kind_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("x_total", "help.")
        with pytest.raises(ValueError):
            r.gauge("x_total", "help.")

    def test_family_label_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("x_total", "help.", ["a"])
        with pytest.raises(ValueError):
            r.counter("x_total", "help.", ["b"])

    def test_invalid_names_rejected(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.counter("bad-name", "help.")
        with pytest.raises(ValueError):
            r.counter("ok_total", "help.", ["bad-label"])

    def test_labels_get_or_create(self):
        r = MetricsRegistry()
        fam = r.counter("x_total", "help.", ["tenant"])
        fam.labels("a").inc(2)
        fam.labels("a").inc(3)
        fam.labels("b").inc(1)
        assert dict(fam.samples()) == {("a",): 5.0, ("b",): 1.0}

    def test_cardinality_guard_collapses_overflow(self):
        r = MetricsRegistry()
        fam = r.counter("x_total", "help.", ["l"], max_children=4)
        for i in range(10):
            fam.labels(str(i)).inc()
        keys = dict(fam.samples())
        assert (OVERFLOW_LABEL,) in keys
        # 4 real children + the overflow child
        assert len(keys) == 5
        assert keys[(OVERFLOW_LABEL,)] == 6.0
        overflowed = dict(r._overflow.samples())
        assert overflowed[("x_total",)] == 6.0

    def test_default_cardinality_bound(self):
        r = MetricsRegistry()
        fam = r.counter("x_total", "help.", ["l"])
        assert fam.max_children == DEFAULT_MAX_CHILDREN

    def test_collector_runs_at_collect_time(self):
        r = MetricsRegistry()
        fam = r.gauge("x", "help.")
        seen = []
        r.register_collector(lambda: (seen.append(1), fam.set(len(seen)))[0])
        r.collect()
        r.collect()
        assert fam.labels().sample() == 2.0

    def test_collector_failure_swallowed(self):
        r = MetricsRegistry()

        def boom():
            raise RuntimeError("no")

        r.register_collector(boom)
        r.collect()  # must not raise

    def test_as_dict_shape(self):
        r = MetricsRegistry()
        r.counter("x_total", "help.", ["l"]).labels("a").inc()
        data = r.as_dict()
        assert data["x_total"]["kind"] == "counter"
        assert data["x_total"]["samples"] == [
            {"labels": {"l": "a"}, "value": 1.0}
        ]


class TestPrometheusRenderer:
    def test_golden_exposition(self):
        r = MetricsRegistry()
        c = r.counter("demo_requests_total", "Requests served.", ["route"])
        c.labels("/a").inc(3)
        c.labels("/b").inc(1)
        g = r.gauge("demo_queue_depth", 'Depth with "quotes" and \\slash.')
        g.set(7)
        h = r.histogram("demo_seconds", "Latency.", buckets=[0.1, 1.0])
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = render_prometheus(r)
        assert text == (
            "# HELP demo_queue_depth Depth with \"quotes\" and \\\\slash.\n"
            "# TYPE demo_queue_depth gauge\n"
            "demo_queue_depth 7\n"
            "# HELP demo_requests_total Requests served.\n"
            "# TYPE demo_requests_total counter\n"
            'demo_requests_total{route="/a"} 3\n'
            'demo_requests_total{route="/b"} 1\n'
            "# HELP demo_seconds Latency.\n"
            "# TYPE demo_seconds histogram\n"
            'demo_seconds_bucket{le="0.1"} 1\n'
            'demo_seconds_bucket{le="1"} 2\n'
            'demo_seconds_bucket{le="+Inf"} 3\n'
            "demo_seconds_sum 5.55\n"
            "demo_seconds_count 3\n"
            "# HELP repro_obs_label_overflow_total Label sets collapsed "
            "by the cardinality guard.\n"
            "# TYPE repro_obs_label_overflow_total counter\n"
        )

    def test_label_value_escaping(self):
        r = MetricsRegistry()
        c = r.counter("x_total", "h.", ["l"])
        c.labels('with "quote" and \\ and \nnewline').inc()
        text = render_prometheus(r)
        assert (
            'x_total{l="with \\"quote\\" and \\\\ and \\nnewline"} 1' in text
        )

    def test_special_float_values(self):
        r = MetricsRegistry()
        g = r.gauge("x", "h.")
        g.set(math.inf)
        assert "x +Inf\n" in render_prometheus(r)
        g.set(-math.inf)
        assert "x -Inf\n" in render_prometheus(r)
        g.set(math.nan)
        assert "x NaN\n" in render_prometheus(r)
        g.set(0.25)
        assert "x 0.25\n" in render_prometheus(r)

    def test_content_type_is_prometheus_text(self):
        assert "text/plain" in CONTENT_TYPE
        assert "version=0.0.4" in CONTENT_TYPE

    def test_render_ends_with_single_trailing_newline(self):
        r = MetricsRegistry()
        r.counter("x_total", "h.").inc()
        text = render_prometheus(r)
        assert text.endswith("\n")
        assert not text.endswith("\n\n")
