"""Shard subsystem units: router partition, facade surface, backends."""

import pytest

from repro import (
    DeterministicCountScheme,
    DeterministicFrequencyScheme,
    ShardedTrackingService,
)
from repro.service.errors import DuplicateJobError, UnknownJobError
from repro.shard import ShardRouter
from repro.shard.merge import UnmergeableQueryError


class TestShardRouter:
    def test_partition_is_balanced_and_total(self):
        router = ShardRouter(37, 5)
        sizes = router.shard_sizes
        assert sum(sizes) == 37
        assert max(sizes) - min(sizes) <= 1
        seen = set()
        for shard in range(5):
            members = router.members(shard)
            assert [router.local_id(s) for s in members] == list(
                range(len(members))
            )
            seen.update(members)
        assert seen == set(range(37))

    def test_single_shard_is_identity(self):
        router = ShardRouter(8, 1)
        assert [router.local_id(s) for s in range(8)] == list(range(8))
        assert router.shard_of(5) == 0

    def test_deterministic_across_instances(self):
        a, b = ShardRouter(64, 8), ShardRouter(64, 8)
        assert [a.shard_of(s) for s in range(64)] == [
            b.shard_of(s) for s in range(64)
        ]

    def test_split_preserves_order_and_pairs(self):
        router = ShardRouter(10, 3)
        site_ids = [3, 7, 3, 1, 9, 9, 0, 3]
        items = list("abcdefgh")
        rebuilt = {}
        for shard, local_ids, shard_items in router.split(site_ids, items):
            assert len(local_ids) == len(shard_items)
            for local, item in zip(local_ids, shard_items):
                rebuilt.setdefault(shard, []).append((local, item))
        # per-shard order must follow global arrival order
        flattened = [
            (router.shard_of(s), router.local_id(s), it)
            for s, it in zip(site_ids, items)
        ]
        for shard, pairs in rebuilt.items():
            expected = [(l, it) for sh, l, it in flattened if sh == shard]
            assert pairs == expected

    def test_split_unit_stream_keeps_none_items(self):
        router = ShardRouter(6, 2)
        for shard, local_ids, items in router.split([0, 1, 2, 3]):
            assert items is None
            assert local_ids

    def test_split_rejects_bad_site_ids_atomically(self):
        router = ShardRouter(4, 2)
        with pytest.raises(ValueError):
            router.split([0, 1, 4], ["a", "b", "c"])
        with pytest.raises(ValueError):
            router.split([0, -1], None)

    def test_split_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            ShardRouter(4, 2).split([0, 1], ["only-one"])

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            ShardRouter(4, 5)  # more shards than sites
        with pytest.raises(ValueError):
            ShardRouter(4, 0)
        with pytest.raises(ValueError):
            ShardRouter(0, 1)

    def test_numpy_and_python_paths_agree(self):
        numpy = pytest.importorskip("numpy")
        router = ShardRouter(12, 4)
        site_ids = [11, 0, 5, 5, 3, 8, 11, 2]
        items = list(range(8))
        fast = router.split(numpy.asarray(site_ids), items)
        slow = router._split_python(site_ids, items)
        assert fast == slow


class TestShardedServiceSurface:
    def make(self, **kwargs):
        service = ShardedTrackingService(num_sites=8, num_shards=4, seed=2,
                                         **kwargs)
        service.register("count", DeterministicCountScheme(0.05))
        return service

    def test_registry_errors_match_unsharded_semantics(self):
        service = self.make()
        with pytest.raises(DuplicateJobError):
            service.register("count", DeterministicCountScheme(0.05))
        with pytest.raises(UnknownJobError):
            service.query("missing")
        with pytest.raises(ValueError):
            service.register("", DeterministicCountScheme(0.05))
        assert "count" in service and len(service) == 1
        assert service["count"].scheme.name == "count/deterministic"
        service.unregister("count")
        assert "count" not in service
        with pytest.raises(UnknownJobError):
            service.unregister("count")
        service.close()

    def test_job_views_track_elements_from_registration(self):
        service = self.make()
        service.ingest([0, 1, 2, 3] * 25)
        service.register("late", DeterministicCountScheme(0.05))
        service.ingest([4, 5, 6, 7] * 25)
        assert service.elements_processed == 200
        assert service.job("count").elements_processed == 200
        assert service.job("late").elements_processed == 100
        service.close()

    def test_status_shape_and_aggregation(self):
        service = self.make()
        service.register("freq", DeterministicFrequencyScheme(0.1))
        service.ingest(
            [i % 8 for i in range(400)], [i % 3 for i in range(400)]
        )
        status = service.status()
        assert status["shards"] == 4 and status["sites"] == 8
        assert status["elements"] == 400
        assert len(status["shard_detail"]) == 4
        assert sum(d["elements"] for d in status["shard_detail"]) == 400
        job = status["jobs"]["count"]
        assert job["elements"] == 400
        assert job["comm"]["total_messages"] > 0
        assert status["comm"]["total_messages"] >= job["comm"]["total_messages"]
        service.close()

    def test_ingest_stream_batches(self):
        service = self.make()
        total = service.ingest_stream(
            ((i % 8, 1) for i in range(1_000)), batch_size=64
        )
        assert total == 1_000 and service.elements_processed == 1_000
        service.close()

    def test_space_budgets_and_overages(self):
        service = ShardedTrackingService(num_sites=8, num_shards=2, seed=0,
                                         space_sample_interval=16)
        assert not service.has_space_budgets()
        service.register(
            "hh", DeterministicFrequencyScheme(0.01), space_budget_words=4
        )
        assert service.has_space_budgets()
        service.ingest(
            [i % 8 for i in range(2_000)], list(range(2_000))
        )
        overages = service.space_overages()
        assert "hh" in overages
        assert overages["hh"]["used"] > overages["hh"]["budget"] == 4
        service.close()

    def test_unmergeable_raises_but_shard_query_works(self):
        service = self.make()
        service.ingest([0, 1, 2, 3])
        with pytest.raises(UnmergeableQueryError):
            service.query("count", "space_words")
        assert service.query_shard(0, "count") >= 0
        with pytest.raises(ValueError):
            service.query_shard(9, "count")
        service.close()

    def test_error_bound_requires_epsilon_scheme(self):
        service = self.make()
        service.ingest([0, 1] * 10)
        accounting = service.error_bound("count")
        assert accounting["bound"] == pytest.approx(0.05 * 20)
        assert len(accounting["per_shard_bounds"]) == 4
        service.close()

    def test_dead_worker_fails_cleanly_without_pipe_desync(self):
        from repro.exec import ExecWorkerError, ProcessBackend

        service = ShardedTrackingService(
            num_sites=8, num_shards=4, seed=4, executor="process"
        )
        service.register("count", DeterministicCountScheme(0.05))
        service.ingest([i % 8 for i in range(200)])
        backend = service._group.backends[2]
        assert isinstance(backend, ProcessBackend)
        backend._proc.kill()
        backend._proc.join(timeout=10)
        with pytest.raises(ExecWorkerError):
            service.ingest([i % 8 for i in range(200)])
        # surviving shards' reply streams must stay aligned: the next
        # fan-out still fails loudly (dead shard) but never returns
        # garbage
        with pytest.raises(ExecWorkerError):
            service.status()
        service.close()

    def test_dead_worker_collect_phase_fails_cleanly(self):
        # The collect-phase dead-pipe path: the worker accepts the
        # command, then dies without replying ("crash" is the hub
        # command table's failure-injection hook).
        from repro.exec import ExecWorkerError

        service = ShardedTrackingService(
            num_sites=8, num_shards=2, seed=4, executor="process"
        )
        service.register("count", DeterministicCountScheme(0.05))
        service.ingest([i % 8 for i in range(100)])
        service._group.backends[1].submit("crash")
        with pytest.raises(ExecWorkerError):
            service.ingest([i % 8 for i in range(100)])
        # the surviving shard still answers on its own
        assert service.query_shard(0, "count") >= 0
        service.close()

    def test_process_restore_after_worker_death_mid_ingest(self, tmp_path):
        from repro.exec import ExecWorkerError

        stream = [i % 8 for i in range(600)]
        reference = ShardedTrackingService(num_sites=8, num_shards=2, seed=4)
        reference.register("count", DeterministicCountScheme(0.05))
        reference.ingest(stream)
        expected = reference.query("count")
        reference.close()

        directory = str(tmp_path / "shards")
        service = ShardedTrackingService(
            num_sites=8, num_shards=2, seed=4, executor="process",
            checkpoint_dir=directory,
        )
        service.register("count", DeterministicCountScheme(0.05))
        service.ingest(stream[:400])
        # worker 1 dies mid-stream; the WAL already holds its batches
        service._group.backends[1]._proc.kill()
        service._group.backends[1]._proc.join(timeout=10)
        with pytest.raises(ExecWorkerError):
            service.ingest(stream[400:])
        service.close()

        restored = ShardedTrackingService.restore(directory, executor="process")
        # shard 0 applied the post-crash batch, shard 1 never acked it:
        # re-send only shard 1's slice is impossible at this surface, so
        # the documented contract is "re-send the failed batch's events
        # for the dead shard after recovery"; here we verify recovery
        # replays exactly what each hub acked durably, then top up the
        # missing slice through the same public ingest path.
        per_shard = restored.status()["shard_detail"]
        assert sum(d["elements"] for d in per_shard) == restored.elements_processed
        missing = [
            s for s in stream[400:]
            if restored.router.shard_of(s) == 1
        ]
        applied_batch = [
            s for s in stream[400:]
            if restored.router.shard_of(s) == 0
        ]
        # shard 0's slice of the failed batch survived in its own WAL
        # (per-hub WAL-ahead), shard 1's did not
        assert restored.status()["shard_detail"][0]["elements"] == sum(
            1 for s in stream if restored.router.shard_of(s) == 0
        )
        assert restored.status()["shard_detail"][1]["elements"] == sum(
            1 for s in stream[:400] if restored.router.shard_of(s) == 1
        )
        restored.ingest(missing)
        assert restored.query("count") == expected
        assert len(applied_batch) + len(missing) == len(stream[400:])
        restored.close()

    def test_backend_restore_revives_a_dead_worker(self, tmp_path):
        # Per-backend restore(): rebuild one dead shard hub from its
        # bundle without tearing down the facade.
        from repro.exec import ExecWorkerError

        directory = str(tmp_path / "shards")
        service = ShardedTrackingService(
            num_sites=8, num_shards=2, seed=4, executor="process",
            checkpoint_dir=directory,
        )
        service.register("count", DeterministicCountScheme(0.05))
        service.ingest([i % 8 for i in range(300)])
        before = service.query("count")
        backend = service._group.backends[1]
        backend._proc.kill()
        backend._proc.join(timeout=10)
        with pytest.raises(ExecWorkerError):
            service.status()
        backend.restore()
        assert service.query("count") == before
        service.close()

    def test_explicit_job_seed_reproduces(self):
        a = ShardedTrackingService(num_sites=8, num_shards=4, seed=1)
        b = ShardedTrackingService(num_sites=8, num_shards=4, seed=99)
        from repro import RandomizedCountScheme

        a.register("j", RandomizedCountScheme(0.05), seed=1234)
        b.register("j", RandomizedCountScheme(0.05), seed=1234)
        stream = [i % 8 for i in range(2_000)]
        a.ingest(stream)
        b.ingest(stream)
        # same explicit job seed => same per-shard derivations => same
        # transcript, independent of the service seeds
        assert a.query("j") == b.query("j")
        a.close()
        b.close()
