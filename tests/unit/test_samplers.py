"""Unit tests for reservoir, Bernoulli and level samplers."""

import pytest

from repro.runtime.rng import derive_rng
from repro.sketch import BernoulliSampler, LevelSampler, ReservoirSampler


class TestReservoir:
    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0, derive_rng(0, "r"))

    def test_fills_then_caps(self):
        r = ReservoirSampler(5, derive_rng(0, "r1"))
        for i in range(100):
            r.add(i)
        assert len(r.sample) == 5
        assert r.n == 100

    def test_small_stream_kept_whole(self):
        r = ReservoirSampler(10, derive_rng(0, "r2"))
        for i in range(4):
            r.add(i)
        assert sorted(r.sample) == [0, 1, 2, 3]

    def test_uniformity(self):
        # Element 0's survival probability should be size/n.
        trials, size, n = 3000, 5, 50
        hits = 0
        for t in range(trials):
            r = ReservoirSampler(size, derive_rng(t, "r3"))
            for i in range(n):
                r.add(i)
            hits += 0 in r.sample
        assert abs(hits / trials - size / n) < 0.03

    def test_space_words(self):
        r = ReservoirSampler(3, derive_rng(0, "r4"))
        r.add(1)
        assert r.space_words() == 1 + 2


class TestBernoulli:
    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            BernoulliSampler(0.0, derive_rng(0, "b"))

    def test_p_one_keeps_all(self):
        b = BernoulliSampler(1.0, derive_rng(0, "b1"))
        for i in range(50):
            assert b.offer(i)
        assert len(b.sample) == 50

    def test_estimate_count_unbiased(self):
        p, n, trials = 0.1, 2000, 50
        total = 0.0
        for t in range(trials):
            b = BernoulliSampler(p, derive_rng(t, "b2"))
            for i in range(n):
                b.offer(i)
            total += b.estimate_count()
        assert abs(total / trials - n) < 0.05 * n

    def test_sample_rate(self):
        b = BernoulliSampler(0.25, derive_rng(0, "b3"))
        n = 20_000
        for i in range(n):
            b.offer(i)
        assert abs(len(b.sample) / n - 0.25) < 0.02


class TestLevelSampler:
    def test_offer_keeps_qualifying(self):
        ls = LevelSampler(derive_rng(0, "l1"))
        for i in range(100):
            ls.offer(i)
        assert len(ls.sample) == 100  # level 0 keeps everything

    def test_raise_level_subsamples(self):
        ls = LevelSampler(derive_rng(0, "l2"))
        for i in range(10_000):
            ls.offer(i)
        before = len(ls.sample)
        ls.raise_level(1)
        after = len(ls.sample)
        assert 0.4 * before < after < 0.6 * before
        assert all(l >= 1 for _, l in ls.sample)

    def test_raise_level_monotone(self):
        ls = LevelSampler(derive_rng(0, "l3"), level=2)
        with pytest.raises(ValueError):
            ls.raise_level(1)

    def test_admit_respects_threshold(self):
        ls = LevelSampler(derive_rng(0, "l4"), level=3)
        ls.admit("x", 2)
        ls.admit("y", 3)
        assert ls.sample == [("y", 3)]

    def test_estimate_count_unbiased_after_raises(self):
        n, trials = 4000, 60
        total = 0.0
        for t in range(trials):
            ls = LevelSampler(derive_rng(t, "l5"))
            for i in range(n):
                ls.offer(i)
            ls.raise_level(3)
            total += ls.estimate_count()
        assert abs(total / trials - n) < 0.1 * n
