"""Unit tests for the shared quantile binary-search helper."""

import pytest

from repro.core.rank.util import quantile_from_rank_fn


def make_rank_fn(sorted_values):
    import bisect

    return lambda x: float(bisect.bisect_left(sorted_values, x))


class TestQuantileFromRankFn:
    def test_empty_candidates_raise(self):
        with pytest.raises(ValueError):
            quantile_from_rank_fn([], lambda x: 0.0, 1.0)

    def test_exact_median(self):
        values = list(range(100))
        rank = make_rank_fn(values)
        assert quantile_from_rank_fn(values, rank, 50) == 49

    def test_first_and_last(self):
        values = [10, 20, 30]
        rank = make_rank_fn(values)
        assert quantile_from_rank_fn(values, rank, 0) == 10
        assert quantile_from_rank_fn(values, rank, 3) == 30

    def test_target_beyond_mass_returns_max(self):
        values = [1, 2, 3]
        rank = make_rank_fn(values)
        assert quantile_from_rank_fn(values, rank, 100) == 3

    def test_with_duplicates(self):
        values = [5, 5, 5, 9]
        rank = make_rank_fn(values)
        assert quantile_from_rank_fn(values, rank, 2) == 5
        assert quantile_from_rank_fn(values, rank, 4) == 9

    def test_weighted_rank_fn(self):
        # Works with fractional/weighted estimators too.
        candidates = [1.0, 2.0, 3.0]
        rank = lambda x: 10.0 * sum(1 for v in candidates if v < x)
        assert quantile_from_rank_fn(candidates, rank, 15.0) == 2.0
