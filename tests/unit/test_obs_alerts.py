"""Alert rules, the transition state machine, sinks, and the manager."""

import http.server
import json
import threading

import pytest

from repro.obs import AlertManager, AlertRule, MetricsRegistry
from repro.obs.alerts import (
    ExecSink,
    LogfileSink,
    SinkError,
    WebhookSink,
    _build_sink,
)


def _rule(name="r", op=">", value=10.0, for_s=0.0, rearm_s=0.0, **kw):
    spec = {"kind": "threshold", "job": "j", "op": op, "value": value}
    return AlertRule(name, spec, for_s=for_s, rearm_s=rearm_s, **kw)


class TestAlertRuleValidation:
    def test_requires_name(self):
        with pytest.raises(ValueError, match="name"):
            AlertRule("", {"kind": "threshold", "job": "j", "op": ">",
                           "value": 1})

    def test_requires_known_kind(self):
        with pytest.raises(ValueError, match="kind"):
            AlertRule("r", {"kind": "nope", "job": "j", "op": ">",
                            "value": 1})

    def test_kind_required_fields(self):
        with pytest.raises(ValueError, match="'job'"):
            AlertRule("r", {"kind": "threshold", "op": ">", "value": 1})
        with pytest.raises(ValueError, match="'metric'"):
            AlertRule("r", {"kind": "metrics", "op": ">", "value": 1})
        with pytest.raises(ValueError, match="'job'"):
            AlertRule("r", {"kind": "error_bound", "op": ">", "value": 1})

    def test_requires_valid_op_and_value(self):
        with pytest.raises(ValueError, match="op"):
            AlertRule("r", {"kind": "threshold", "job": "j", "op": "!=",
                            "value": 1})
        with pytest.raises(ValueError, match="value"):
            AlertRule("r", {"kind": "threshold", "job": "j", "op": ">",
                            "value": True})

    def test_negative_durations_rejected(self):
        with pytest.raises(ValueError, match="'for' and 'rearm'"):
            _rule(for_s=-1)


class TestAlertRuleStateMachine:
    def test_fires_immediately_with_zero_for(self):
        rule = _rule()
        assert rule.step(5.0, now=0.0) is None
        assert rule.state == "ok"
        assert rule.step(15.0, now=1.0) == "firing"
        assert rule.state == "firing"
        assert rule.fired_count == 1

    def test_resolves_when_predicate_lets_go(self):
        rule = _rule()
        rule.step(15.0, now=0.0)
        assert rule.step(5.0, now=1.0) == "resolved"
        assert rule.state == "ok"

    def test_for_duration_gates_firing(self):
        rule = _rule(for_s=5.0)
        assert rule.step(15.0, now=0.0) is None
        assert rule.state == "pending"
        assert rule.pending_deadline() == 5.0
        assert rule.step(15.0, now=3.0) is None
        assert rule.step(15.0, now=5.0) == "firing"

    def test_pending_that_lets_go_returns_to_ok_silently(self):
        rule = _rule(for_s=5.0)
        rule.step(15.0, now=0.0)
        assert rule.step(5.0, now=2.0) is None  # never fired: no resolve
        assert rule.state == "ok"
        # the pending clock restarts from scratch
        rule.step(15.0, now=3.0)
        assert rule.step(15.0, now=7.0) is None
        assert rule.step(15.0, now=8.0) == "firing"

    def test_rearm_hysteresis_suppresses_flapping(self):
        rule = _rule(rearm_s=10.0)
        rule.step(15.0, now=0.0)
        rule.step(5.0, now=1.0)  # resolved; re-arm until t=11
        assert rule.step(15.0, now=5.0) is None  # inside holdoff
        assert rule.state == "ok"
        assert rule.step(15.0, now=11.0) == "firing"

    def test_all_comparison_ops(self):
        assert _rule(op=">", value=10).active(11)
        assert not _rule(op=">", value=10).active(10)
        assert _rule(op=">=", value=10).active(10)
        assert _rule(op="<", value=10).active(9)
        assert _rule(op="<=", value=10).active(10)


class _Receiver(http.server.BaseHTTPRequestHandler):
    status = 200
    received: list = []

    def do_POST(self):
        body = self.rfile.read(int(self.headers["Content-Length"]))
        type(self).received.append(json.loads(body))
        self.send_response(type(self).status)
        self.end_headers()

    def log_message(self, *args):
        pass


@pytest.fixture
def webhook_server():
    _Receiver.received = []
    _Receiver.status = 200
    server = http.server.HTTPServer(("127.0.0.1", 0), _Receiver)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_port}/", _Receiver
    server.shutdown()
    server.server_close()


class TestSinks:
    def test_webhook_posts_json(self, webhook_server):
        url, receiver = webhook_server
        WebhookSink(url).emit({"rule": "r", "state": "firing"})
        assert receiver.received == [{"rule": "r", "state": "firing"}]

    def test_webhook_retries_then_raises(self, webhook_server):
        url, receiver = webhook_server
        receiver.status = 500
        sink = WebhookSink(url, retries=2, backoff=0.0)
        with pytest.raises(SinkError, match="3 attempt"):
            sink.emit({"rule": "r"})
        assert len(receiver.received) == 3

    def test_webhook_connection_refused(self):
        sink = WebhookSink("http://127.0.0.1:1/", retries=0, backoff=0.0)
        with pytest.raises(SinkError):
            sink.emit({})

    def test_exec_sink_gets_event_on_stdin(self, tmp_path):
        out = tmp_path / "seen.json"
        sink = ExecSink(
            ["python", "-c",
             "import sys; open(%r, 'w').write(sys.stdin.read())" % str(out)]
        )
        sink.emit({"rule": "r", "state": "firing"})
        assert json.loads(out.read_text())["rule"] == "r"

    def test_exec_sink_nonzero_exit_raises(self):
        sink = ExecSink(["python", "-c", "import sys; sys.exit(3)"])
        with pytest.raises(SinkError, match="exited 3"):
            sink.emit({})

    def test_logfile_sink_appends_json_lines(self, tmp_path):
        path = tmp_path / "alerts.log"
        sink = LogfileSink(str(path))
        sink.emit({"rule": "a"})
        sink.emit({"rule": "b"})
        lines = path.read_text().splitlines()
        assert [json.loads(line)["rule"] for line in lines] == ["a", "b"]

    def test_logfile_sink_unwritable_raises(self):
        with pytest.raises(SinkError):
            LogfileSink("/nonexistent-dir/alerts.log").emit({})

    def test_build_sink_validation(self):
        with pytest.raises(ValueError, match="unknown type"):
            _build_sink("s", {"type": "smoke-signal"})
        with pytest.raises(ValueError, match="url"):
            _build_sink("s", {"type": "webhook"})
        with pytest.raises(ValueError, match="command"):
            _build_sink("s", {"type": "exec", "command": "not-a-list"})


class TestAlertManager:
    def _manager(self, rules=None, sinks=None, **kw):
        return AlertManager(
            rules if rules is not None else [_rule()],
            sinks=sinks,
            registry=MetricsRegistry(),
            **kw,
        )

    def test_duplicate_rule_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            self._manager([_rule("a"), _rule("a")])

    def test_unknown_sink_rejected(self):
        with pytest.raises(ValueError, match="unknown sink"):
            self._manager([_rule(sinks=["ops"])])

    def test_step_emits_transition_events_with_exemplar(self):
        mgr = self._manager()
        assert mgr.step({"r": 5.0}, now=0.0) == []
        events = mgr.step({"r": 15.0}, now=1.0, trace_id="abc123")
        assert len(events) == 1
        assert events[0]["state"] == "firing"
        assert events[0]["trace_id"] == "abc123"
        assert events[0]["value"] == 15.0
        assert mgr.events()[-1]["rule"] == "r"

    def test_none_value_holds_state_and_counts_error(self):
        mgr = self._manager()
        mgr.step({"r": 15.0}, now=0.0)
        assert mgr.step({"r": None}, now=1.0) == []
        assert mgr.rules["r"].state == "firing"
        assert mgr.m_eval_errors.labels("r").value == 1

    def test_missing_rule_value_skips(self):
        mgr = self._manager()
        assert mgr.step({}, now=0.0) == []
        assert mgr.m_evals.labels().value == 0

    def test_dispatch_to_logfile_sink(self, tmp_path):
        path = tmp_path / "alerts.log"
        mgr = self._manager(
            [_rule(sinks=["audit"])],
            sinks={"audit": LogfileSink(str(path))},
        )
        try:
            mgr.step({"r": 15.0}, now=0.0)
            assert mgr.flush()
            deadline = 50
            while not path.exists() and deadline:
                import time

                time.sleep(0.02)
                deadline -= 1
            event = json.loads(path.read_text().splitlines()[0])
            assert event["state"] == "firing"
        finally:
            mgr.close()

    def test_dead_letter_on_sink_failure(self):
        mgr = self._manager(
            [_rule(sinks=["bad"])],
            sinks={"bad": LogfileSink("/nonexistent-dir/x.log")},
        )
        try:
            event = mgr.step({"r": 15.0}, now=0.0)[0]
            assert not mgr.dispatch_now("bad", event)
            assert mgr.m_dead_letters.labels("bad").value >= 1
            assert mgr.m_sink_failures.labels("bad").value >= 1
            assert mgr.dead_letters()[-1]["sink"] == "bad"
        finally:
            mgr.close()

    def test_pending_deadline_min_over_rules(self):
        mgr = self._manager([_rule("a", for_s=5.0), _rule("b", for_s=2.0)])
        mgr.step({"a": 15.0, "b": 15.0}, now=0.0)
        assert mgr.pending_deadline() == 2.0

    def test_describe_shape(self):
        mgr = self._manager()
        mgr.step({"r": 15.0}, now=0.0)
        info = mgr.describe()
        assert info["rules"][0]["state"] == "firing"
        assert info["events"][0]["state"] == "firing"
        assert info["sinks"] == {}
        assert info["dead_letters"] == []

    def test_firing_gauge_tracks_states(self):
        registry = MetricsRegistry()
        mgr = AlertManager([_rule()], registry=registry)
        sample = registry.as_dict()["repro_alerts_firing"]["samples"][0]
        assert sample["value"] == 0
        mgr.step({"r": 15.0}, now=0.0)
        sample = registry.as_dict()["repro_alerts_firing"]["samples"][0]
        assert sample["value"] == 1

    def test_event_ring_bounded(self):
        mgr = self._manager([_rule("flap")])
        for i in range(300):
            mgr.step({"flap": 15.0}, now=float(2 * i))
            mgr.step({"flap": 5.0}, now=float(2 * i + 1))
        assert len(mgr.events()) == 256
        assert mgr.events(limit=5)[-1]["state"] == "resolved"

    def test_close_idempotent(self, tmp_path):
        mgr = self._manager(
            [_rule(sinks=["audit"])],
            sinks={"audit": LogfileSink(str(tmp_path / "a.log"))},
        )
        mgr.close()
        mgr.close()


class TestFromManifest:
    def _manifest(self, tmp_path):
        return {
            "sinks": {
                "audit": {"type": "logfile",
                          "path": str(tmp_path / "alerts.log")},
            },
            "rules": [
                {"name": "hot", "kind": "threshold", "job": "hh",
                 "method": "estimate", "op": ">", "value": 100,
                 "for": 2, "rearm": 30, "sinks": ["audit"],
                 "labels": {"severity": "page"}},
                {"name": "low", "kind": "metrics",
                 "metric": "repro_service_elements_total",
                 "op": "<", "value": 10},
            ],
        }

    def test_parses_rules_and_sinks(self, tmp_path):
        mgr = AlertManager.from_manifest(
            self._manifest(tmp_path), registry=MetricsRegistry()
        )
        try:
            assert set(mgr.rules) == {"hot", "low"}
            hot = mgr.rules["hot"]
            assert hot.for_s == 2.0
            assert hot.rearm_s == 30.0
            assert hot.sinks == ["audit"]
            assert hot.labels == {"severity": "page"}
            assert hot.spec["method"] == "estimate"
            assert mgr.rules["low"].spec["kind"] == "metrics"
            assert isinstance(mgr.sinks["audit"], LogfileSink)
        finally:
            mgr.close()

    def test_kind_defaults_to_threshold(self, tmp_path):
        manifest = {"rules": [{"name": "r", "job": "j", "op": ">",
                               "value": 1}]}
        mgr = AlertManager.from_manifest(manifest, registry=MetricsRegistry())
        assert mgr.rules["r"].spec["kind"] == "threshold"

    def test_rejects_bad_documents(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="object"):
            AlertManager.from_manifest([], registry=registry)
        with pytest.raises(ValueError, match="rules"):
            AlertManager.from_manifest({}, registry=registry)
        with pytest.raises(ValueError, match="rules"):
            AlertManager.from_manifest({"rules": []}, registry=registry)
        with pytest.raises(ValueError, match="unknown sink"):
            AlertManager.from_manifest(
                {"rules": [{"name": "r", "job": "j", "op": ">", "value": 1,
                            "sinks": ["missing"]}]},
                registry=registry,
            )
