"""Unit tests for theory formulas, accuracy harness, and table rendering."""

import math

import pytest

from repro import DeterministicCountScheme, RandomizedCountScheme
from repro.analysis import (
    AccuracyReport,
    det_count_comm,
    det_rank_comm,
    evaluate_count_accuracy,
    evaluate_frequency_accuracy,
    evaluate_rank_accuracy,
    format_number,
    improvement_factor,
    rand_count_comm,
    rand_frequency_space,
    rand_rank_comm,
    render_table,
    repeat_success_rate,
    sampling_comm,
)
from repro.workloads import (
    random_permutation_values,
    uniform_sites,
    with_items,
    zipf_items,
)
from repro import RandomizedFrequencyScheme, RandomizedRankScheme


class TestTheoryFormulas:
    def test_det_vs_rand_separation(self):
        k, eps, n = 100, 0.01, 10**6
        assert det_count_comm(k, eps, n) / rand_count_comm(k, eps, n) > 3

    def test_improvement_factor(self):
        assert improvement_factor(100) == 10.0

    def test_rand_count_scales_sqrt_k(self):
        eps, n = 0.001, 10**6
        a = rand_count_comm(100, eps, n)
        b = rand_count_comm(400, eps, n)
        # Dominant term sqrt(k)/eps: quadrupling k doubles cost.
        assert 1.8 < b / a < 2.5

    def test_det_scales_linear_k(self):
        eps, n = 0.01, 10**6
        assert det_count_comm(40, eps, n) == 2 * det_count_comm(20, eps, n)

    def test_sampling_beats_det_when_eps_moderate(self):
        # k = Omega(1/eps^2) regime: sampling is near-optimal.
        k, eps, n = 10_000, 0.1, 10**6
        assert sampling_comm(k, eps, n) < det_count_comm(k, eps, n)

    def test_rank_formulas_positive(self):
        assert det_rank_comm(16, 0.01, 10**6) > 0
        assert rand_rank_comm(16, 0.01, 10**6) > 0

    def test_frequency_space_formula(self):
        assert rand_frequency_space(16, 0.01) == pytest.approx(25.0)


class TestAccuracyHarness:
    def test_count_report(self):
        report, sim = evaluate_count_accuracy(
            RandomizedCountScheme(0.1), 9, uniform_sites(10_000, 9, seed=1),
            eps=0.1, checkpoint_every=500,
        )
        assert report.checkpoints == 20
        assert report.success_rate >= 0.9
        assert 0 <= report.mean_relative_error <= report.max_relative_error

    def test_count_report_det_always_succeeds(self):
        report, _ = evaluate_count_accuracy(
            DeterministicCountScheme(0.1), 5, uniform_sites(5_000, 5, seed=2),
            eps=0.1,
        )
        assert report.success_rate == 1.0

    def test_frequency_report(self):
        stream = with_items(
            uniform_sites(10_000, 9, seed=3), zipf_items(50, seed=4)
        )
        report, _ = evaluate_frequency_accuracy(
            RandomizedFrequencyScheme(0.1), 9, stream, eps=0.1,
            track_items=[0, 1, 2],
        )
        assert report.checkpoints == 20 * 3
        assert report.success_rate >= 0.85

    def test_rank_report(self):
        values = random_permutation_values(10_000, seed=5)
        sites = [s for s, _ in uniform_sites(10_000, 9, seed=6)]
        report, _ = evaluate_rank_accuracy(
            RandomizedRankScheme(0.1), 9, zip(sites, values), eps=0.1,
            query_points=[2_500, 5_000, 7_500],
        )
        assert report.checkpoints == 10 * 3
        assert report.success_rate >= 0.85

    def test_empty_report_defaults(self):
        r = AccuracyReport()
        assert r.success_rate == 1.0
        assert r.mean_relative_error == 0.0
        assert r.max_relative_error == 0.0

    def test_repeat_success_rate(self):
        assert repeat_success_rate(lambda seed: seed % 2 == 0, 10) == 0.5


class TestTables:
    def test_format_int(self):
        assert format_number(1234567) == "1,234,567"

    def test_format_float(self):
        assert format_number(0.1234) == "0.123"
        assert format_number(1234.5) == "1,234"
        assert format_number(0) in ("0", "0.0")

    def test_format_passthrough(self):
        assert format_number("abc") == "abc"

    def test_render_table_aligns(self):
        out = render_table(
            ["name", "value"], [["a", 1], ["bb", 22]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len({len(l) for l in lines[1:]}) == 1  # uniform width

    def test_render_table_no_title(self):
        out = render_table(["x"], [[1]])
        assert out.splitlines()[0].startswith("x")
