"""Unit tests for the distributed sampling baseline ([9])."""

import math

import pytest

from repro import DistributedSamplingScheme, Simulation
from repro.workloads import (
    random_permutation_values,
    uniform_sites,
    with_items,
    zipf_items,
)

from ..conftest import run_count, run_rank, true_rank


class TestScheme:
    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            DistributedSamplingScheme(0.0)

    def test_sample_size_formula(self):
        s = DistributedSamplingScheme(0.1, sample_constant=4.0)
        assert s.sample_size == 400

    def test_count_estimate_close(self):
        eps, n, k = 0.1, 40_000, 9
        sim = run_count(DistributedSamplingScheme(eps), n, k)
        assert abs(sim.coordinator.estimate() - n) <= 3 * eps * n

    def test_sample_stays_bounded(self):
        eps, n, k = 0.1, 40_000, 9
        sim = run_count(DistributedSamplingScheme(eps), n, k)
        coord = sim.coordinator
        assert len(coord.sample) <= 2 * coord.s
        assert coord.level >= 1

    def test_level_broadcasts_counted(self):
        eps, n, k = 0.1, 40_000, 9
        sim = run_count(DistributedSamplingScheme(eps), n, k)
        assert sim.comm.broadcast_messages >= k  # at least one level raise

    def test_frequency_estimate(self):
        eps, n, k = 0.1, 40_000, 9
        items = zipf_items(50, alpha=1.5, seed=3)
        stream = list(with_items(uniform_sites(n, k, seed=1), items))
        truth = {}
        for _, item in stream:
            truth[item] = truth.get(item, 0) + 1
        sim = Simulation(DistributedSamplingScheme(eps), k, seed=0)
        sim.run(stream)
        est = sim.coordinator.estimate_frequency(0)
        assert abs(est - truth[0]) <= 3 * eps * n

    def test_rank_estimate(self):
        eps, n, k = 0.1, 30_000, 9
        values = random_permutation_values(n, seed=4)
        sim, svals = run_rank(DistributedSamplingScheme(eps), values, k)
        for q in (n // 4, n // 2, 3 * n // 4):
            err = abs(sim.coordinator.estimate_rank(q) - true_rank(svals, q))
            assert err <= 3 * eps * n

    def test_quantile(self):
        eps, n, k = 0.1, 30_000, 9
        values = random_permutation_values(n, seed=5)
        sim, _ = run_rank(DistributedSamplingScheme(eps), values, k)
        assert abs(sim.coordinator.quantile(0.5) - n / 2) <= 4 * eps * n

    def test_heavy_hitters(self):
        eps, n, k = 0.1, 30_000, 9
        items = zipf_items(50, alpha=1.6, seed=6)
        stream = list(with_items(uniform_sites(n, k, seed=1), items))
        sim = Simulation(DistributedSamplingScheme(eps), k, seed=0)
        sim.run(stream)
        hh = sim.coordinator.heavy_hitters(0.15)
        assert 0 in hh

    def test_communication_independent_of_k_term_dominates(self):
        # For k small, cost ~ (1/eps^2) log N and barely grows with k.
        eps, n = 0.1, 40_000
        w4 = run_count(DistributedSamplingScheme(eps), n, 4).comm.total_words
        w16 = run_count(DistributedSamplingScheme(eps), n, 16).comm.total_words
        assert w16 < 2.5 * w4

    def test_site_space_constant(self):
        eps, n, k = 0.1, 30_000, 9
        sim = run_count(DistributedSamplingScheme(eps), n, k)
        assert sim.space.max_site_words <= 3
