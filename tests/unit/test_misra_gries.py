"""Unit tests for the Misra–Gries summary."""

import pytest

from repro.sketch import MisraGries


class TestBasics:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MisraGries(0)

    def test_rejects_nonpositive_count(self):
        mg = MisraGries(2)
        with pytest.raises(ValueError):
            mg.add("a", 0)

    def test_exact_when_under_capacity(self):
        mg = MisraGries(10)
        for item in "aabbbcc":
            mg.add(item)
        assert mg.estimate("a") == 2
        assert mg.estimate("b") == 3
        assert mg.estimate("c") == 2
        assert mg.estimate("z") == 0

    def test_counter_limit_respected(self):
        mg = MisraGries(3)
        for item in range(100):
            mg.add(item)
        assert len(mg.counters) <= 3

    def test_batch_add(self):
        mg = MisraGries(4)
        mg.add("a", 10)
        mg.add("b", 5)
        assert mg.estimate("a") == 10
        assert mg.n == 15


class TestGuarantees:
    def test_never_overcounts(self):
        mg = MisraGries(5)
        truth = {}
        stream = [i % 13 for i in range(1000)]
        for item in stream:
            mg.add(item)
            truth[item] = truth.get(item, 0) + 1
        for item, count in truth.items():
            assert mg.estimate(item) <= count

    def test_undercount_bound(self):
        capacity = 9
        mg = MisraGries(capacity)
        truth = {}
        # Skewed stream: item 0 is heavy.
        stream = [0 if i % 3 else i % 50 for i in range(3000)]
        for item in stream:
            mg.add(item)
            truth[item] = truth.get(item, 0) + 1
            for j, c in truth.items():
                assert c - mg.estimate(j) <= mg.n / (capacity + 1) + 1e-9

    def test_heavy_hitters_no_false_negatives(self):
        mg = MisraGries(19)
        stream = [0] * 500 + [1] * 300 + list(range(2, 202))
        for item in stream:
            mg.add(item)
        threshold = 0.2 * mg.n
        hh = mg.heavy_hitters(threshold)
        assert 0 in hh
        assert 1 in hh

    def test_error_bound_value(self):
        mg = MisraGries(9)
        for i in range(100):
            mg.add(i)
        assert mg.error_bound() == 100 / 10

    def test_space_words_tracks_counters(self):
        mg = MisraGries(5)
        for i in range(3):
            mg.add(i)
        assert mg.space_words() == 2 * 3 + 2


class TestDecrementBatching:
    def test_large_batch_absorbed(self):
        mg = MisraGries(2)
        mg.add("a", 100)
        mg.add("b", 50)
        mg.add("c", 80)  # evicts through decrements
        # a survived with decremented count; never overcounts.
        assert mg.estimate("a") <= 100
        assert mg.n == 230

    def test_decrements_bounded_by_stream(self):
        mg = MisraGries(4)
        for i in range(500):
            mg.add(i % 29)
        # Every decrement round removes capacity+1 stream units at once;
        # total decremented mass is at most n / (capacity + 1) per item slot.
        assert mg.decrements <= mg.n / (mg.capacity + 1) + 1
