"""ExecBackend conformance: one suite, all four placements.

The execution plane's contract is that a worker behaves identically
however it is placed — in the caller's process, behind a thread, in a
subprocess, or on a TCP exec host.  Every test here parametrizes over
all four backends and pins: identical answers for identical seeds,
identical error types, the submit/drain (relaxed) discipline, and the
checkpoint/restore lifecycle.
"""

import pytest

from repro import (
    DeterministicCountScheme,
    DeterministicFrequencyScheme,
    RandomizedCountScheme,
)
from repro.exec import EXECUTORS, ExecError, make_backend
from repro.exec.workers import hub_spec, sim_spec
from repro.obs.tracing import trace_scope
from repro.service.errors import DuplicateJobError, UnknownJobError

K = 8
SEED = 3
STREAM = [i % K for i in range(600)]
ITEMS = [i % 17 for i in range(600)]


def hub_backend(executor, **config):
    config.setdefault("num_sites", K)
    config.setdefault("seed", SEED)
    return make_backend(executor, hub_spec(config))


def build_jobs(backend):
    backend.dispatch_run(
        "register", "count", RandomizedCountScheme(0.05), 11, None
    )
    backend.dispatch_run(
        "register", "hot", DeterministicFrequencyScheme(0.1), 12, None
    )


def observed_answers(backend):
    return (
        backend.query("count", None, (), {}),
        backend.query("hot", "top_items", (3,), {}),
        backend.dispatch_run("elements"),
    )


class TestHubConformance:
    def test_identical_answers_across_all_backends(self):
        answers = {}
        for executor in EXECUTORS:
            with hub_backend(executor) as backend:
                build_jobs(backend)
                assert backend.dispatch_batch(STREAM, ITEMS) == len(STREAM)
                answers[executor] = observed_answers(backend)
        reference = answers["inline"]
        assert reference[2] == len(STREAM)
        for executor, got in answers.items():
            assert got == reference, executor

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_error_types_survive_placement(self, executor):
        with hub_backend(executor) as backend:
            build_jobs(backend)
            with pytest.raises(UnknownJobError):
                backend.query("missing", None, (), {})
            with pytest.raises(DuplicateJobError):
                backend.dispatch_run(
                    "register", "count", RandomizedCountScheme(0.05), 1, None
                )
            with pytest.raises(AttributeError):
                backend.query("count", "definitely_not_a_query", (), {})
            # the worker keeps serving after reporting an error
            assert backend.dispatch_run("ping") is True

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_relaxed_submit_then_drain(self, executor):
        with hub_backend(executor) as backend:
            build_jobs(backend)
            posted = backend.dispatch_batch(STREAM, ITEMS, relaxed=True)
            posted += backend.dispatch_batch(STREAM, ITEMS, relaxed=True)
            assert posted == 2 * len(STREAM)
            assert backend.pending >= 1 or executor == "inline"
            # any collecting call fences the outstanding batches first
            assert backend.dispatch_run("elements") == 2 * len(STREAM)
            assert backend.pending == 0

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_deferred_errors_surface_at_drain(self, executor):
        with hub_backend(executor) as backend:
            build_jobs(backend)
            backend.submit("query", "missing", None, (), {})
            backend.submit("elements")
            with pytest.raises(UnknownJobError):
                backend.drain()
            # the drain consumed the good reply too; the pipe realigns
            assert backend.pending == 0
            assert backend.dispatch_run("elements") == 0

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_checkpoint_restore_roundtrip(self, executor, tmp_path):
        directory = str(tmp_path / f"hub-{executor}")
        with hub_backend(executor, checkpoint_dir=directory) as backend:
            build_jobs(backend)
            backend.dispatch_batch(STREAM, ITEMS)
            path = backend.checkpoint()
            assert isinstance(path, str)
            before = observed_answers(backend)
            backend.dispatch_batch(STREAM, ITEMS)  # post-checkpoint tail
            after = observed_answers(backend)
            backend.restore()
            # WAL-ahead ingest means the tail replays too: the restored
            # worker continues the exact transcript, not the snapshot
            assert observed_answers(backend) == after
            assert after != before

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_restore_without_durable_source_raises(self, executor):
        with hub_backend(executor) as backend:
            with pytest.raises(ExecError):
                backend.restore()

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_close_is_idempotent(self, executor):
        backend = hub_backend(executor)
        backend.dispatch_run("ping")
        backend.close()
        backend.close()


class TestSimConformance:
    """The same seeded protocol stack answers identically anywhere."""

    def test_identical_protocol_run_across_all_backends(self):
        answers = {}
        for executor in EXECUTORS:
            spec = sim_spec(
                {
                    "scheme": DeterministicCountScheme(0.05),
                    "num_sites": K,
                    "seed": SEED,
                }
            )
            with make_backend(executor, spec) as backend:
                assert backend.dispatch_batch(STREAM) == len(STREAM)
                summary = backend.dispatch_run("summary")
                answers[executor] = (
                    backend.query(None, (), {}),
                    summary["total_messages"],
                    summary["total_words"],
                    summary["elements"],
                )
        reference = answers["inline"]
        for executor, got in answers.items():
            assert got == reference, executor

    def test_sim_state_roundtrip_inline(self):
        spec = sim_spec(
            {
                "scheme": RandomizedCountScheme(0.05),
                "num_sites": K,
                "seed": SEED,
            }
        )
        with make_backend("inline", spec) as backend:
            backend.dispatch_batch(STREAM)
            state = backend.checkpoint()
            answer = backend.query(None, (), {})
        with make_backend("inline", spec) as fresh:
            fresh.dispatch_run("load_state", state)
            assert fresh.query(None, (), {}) == answer

    def test_sim_workers_are_not_durably_restorable(self):
        spec = sim_spec(
            {
                "scheme": DeterministicCountScheme(0.05),
                "num_sites": K,
                "seed": SEED,
            }
        )
        with make_backend("inline", spec) as backend:
            with pytest.raises(ExecError):
                backend.restore()


class TestGroupSemantics:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ExecError):
            make_backend("carrier-pigeon", hub_spec({"num_sites": 2}))

    def test_group_map_posts_all_then_collects(self):
        from repro.exec import make_group

        group = make_group(
            "thread",
            [hub_spec({"num_sites": 2, "seed": s}) for s in (1, 2, 3)],
        )
        try:
            group.map(
                "register",
                [("j", DeterministicCountScheme(0.05), s, None)
                 for s in (1, 2, 3)],
            )
            counts = group.map("ingest", [([0, 1, 0], None)] * 3)
            assert counts == [3, 3, 3]
            group.map("ingest", [([0], None)] * 3, collect=False)
            assert group.pending == 3
            assert group.collect() == [1, 1, 1]
            assert group.pending == 0
        finally:
            group.close()

    def test_group_collect_is_failure_safe(self):
        from repro.exec import make_group

        group = make_group(
            "inline", [hub_spec({"num_sites": 2, "seed": s}) for s in (1, 2)]
        )
        try:
            group.map(
                "register",
                [("j", DeterministicCountScheme(0.05), s, None)
                 for s in (1, 2)],
            )
            # one backend gets a failing command, the other a good one;
            # the good backend's reply must still be consumed
            group.backends[0].submit("query", "missing", None, (), {})
            group.backends[1].submit("elements")
            with pytest.raises(UnknownJobError):
                group.collect()
            assert group.pending == 0
            assert group.map("elements", [(), ()]) == [0, 0]
        finally:
            group.close()


class TestTracePropagation:
    """The caller's trace context rides every placement's envelope."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_submit_carries_trace_to_hub(self, executor):
        with hub_backend(executor) as backend:
            build_jobs(backend)
            with trace_scope({"trace_id": "t-exec", "span_id": "caller"}):
                backend.submit("ingest", STREAM, ITEMS)
            assert backend.drain() == [len(STREAM)]
            spans = backend.dispatch_run("collect_spans")
            ingests = [s for s in spans if s["name"] == "ingest"]
            assert len(ingests) == 1
            assert ingests[0]["trace_id"] == "t-exec"
            assert ingests[0]["parent_id"] == "caller"
            assert ingests[0]["attrs"]["events"] == len(STREAM)
            # collect_spans drains: a second read is empty
            assert backend.dispatch_run("collect_spans") == []

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_untraced_work_records_no_hub_span(self, executor):
        with hub_backend(executor) as backend:
            build_jobs(backend)
            backend.submit("ingest", STREAM, ITEMS)
            assert backend.drain() == [len(STREAM)]
            assert backend.dispatch_run("collect_spans") == []
