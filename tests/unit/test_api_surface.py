"""API-surface hygiene: exports exist, are documented, and agree.

Guards the public contract: everything in ``__all__`` must resolve and
carry a docstring, every scheme must expose the query interface its
problem promises, and independent schemes must agree with each other on
the same data (cross-validation without ground truth).
"""

import importlib
import inspect

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.runtime",
    "repro.sketch",
    "repro.core",
    "repro.core.count",
    "repro.core.frequency",
    "repro.core.rank",
    "repro.core.sampling",
    "repro.core.window",
    "repro.workloads",
    "repro.lowerbounds",
    "repro.oneshot",
    "repro.analysis",
    "repro.service",
]


class TestExports:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_all_entries_resolve_and_are_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name, None)
            assert obj is not None, f"{module_name}.{name} missing"
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_scheme_names_unique(self):
        schemes = [
            repro.RandomizedCountScheme(0.1),
            repro.DeterministicCountScheme(0.1),
            repro.RandomizedFrequencyScheme(0.1),
            repro.DeterministicFrequencyScheme(0.1),
            repro.RandomizedRankScheme(0.1),
            repro.DeterministicRankScheme(0.1),
            repro.Cormode05RankScheme(0.1),
            repro.DistributedSamplingScheme(0.1),
            repro.WindowedCountScheme(100, 0.1),
        ]
        names = [s.name for s in schemes]
        assert len(names) == len(set(names))


class TestCrossSchemeAgreement:
    """Independent implementations must agree on the same stream."""

    def test_count_schemes_agree(self):
        from repro import Simulation
        from repro.workloads import uniform_sites

        n, k, eps = 30_000, 9, 0.05
        stream = list(uniform_sites(n, k, seed=33))
        estimates = []
        for scheme in (
            repro.RandomizedCountScheme(eps),
            repro.DeterministicCountScheme(eps),
            repro.DistributedSamplingScheme(eps),
        ):
            sim = Simulation(scheme, k, seed=34)
            sim.run(stream)
            estimates.append(sim.coordinator.estimate())
        spread = max(estimates) - min(estimates)
        assert spread <= 4 * eps * n

    def test_rank_schemes_agree_on_quantiles(self):
        from repro import Simulation
        from repro.workloads import random_permutation_values, uniform_sites

        n, k, eps = 30_000, 9, 0.05
        values = random_permutation_values(n, seed=35)
        sites = [s for s, _ in uniform_sites(n, k, seed=36)]
        stream = list(zip(sites, values))
        for phi in (0.25, 0.5, 0.75):
            answers = []
            for scheme in (
                repro.RandomizedRankScheme(eps),
                repro.DeterministicRankScheme(eps),
                repro.DistributedSamplingScheme(eps),
            ):
                sim = Simulation(scheme, k, seed=37)
                sim.run(stream)
                answers.append(sim.coordinator.quantile(phi))
            # Values are 0..n-1, so quantile answers are directly
            # comparable as ranks.
            assert max(answers) - min(answers) <= 5 * eps * n

    def test_oneshot_agrees_with_tracking(self):
        from collections import Counter

        from repro import Simulation
        from repro.oneshot import OneShotFrequency
        from repro.runtime.rng import derive_rng
        from repro.workloads import uniform_sites, with_items, zipf_items

        n, k, eps = 30_000, 9, 0.05
        stream = list(
            with_items(uniform_sites(n, k, seed=38), zipf_items(100, seed=39))
        )
        site_data = [dict() for _ in range(k)]
        for s, j in stream:
            site_data[s][j] = site_data[s].get(j, 0) + 1
        oneshot = OneShotFrequency(eps, derive_rng(40, "agree")).run(site_data)
        sim = Simulation(repro.RandomizedFrequencyScheme(eps), k, seed=41)
        sim.run(stream)
        truth = Counter(j for _, j in stream)
        for item in range(3):
            a = oneshot.estimate_frequency(item)
            b = sim.coordinator.estimate_frequency(item)
            assert abs(a - truth[item]) <= 3 * eps * n
            assert abs(b - truth[item]) <= 3 * eps * n
