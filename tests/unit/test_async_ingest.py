"""AsyncBatchIngestor: backpressure blocks (never drops), coalescing, order."""

import asyncio
import threading

import pytest

from repro import RandomizedCountScheme, TrackingService
from repro.service import AsyncBatchIngestor, IngestorClosedError


class RecordingService:
    """Duck-typed service capturing every engine call."""

    def __init__(self):
        self.batches = []
        self.elements_processed = 0
        self.gate = threading.Event()
        self.gate.set()
        self.entered = threading.Event()

    def ingest(self, site_ids, items=None):
        self.entered.set()
        self.gate.wait(timeout=30)
        self.batches.append((list(site_ids), None if items is None else list(items)))
        self.elements_processed += len(site_ids)
        return len(site_ids)


def run(coro):
    return asyncio.run(coro)


class TestBackpressure:
    def test_full_queue_blocks_then_completes_without_drops(self):
        async def scenario():
            service = RecordingService()
            service.gate.clear()  # stall the engine: the queue must fill
            ingestor = await AsyncBatchIngestor(
                service, capacity_events=100, max_batch_events=50
            ).start()
            first = asyncio.ensure_future(ingestor.submit([0] * 60))
            # Wait for the worker to pick the first batch up and stall.
            await asyncio.get_running_loop().run_in_executor(
                None, service.entered.wait, 10
            )
            second = asyncio.ensure_future(ingestor.submit([1] * 60))
            # 60 in flight + 60 > 100: the second submit must be blocked.
            await asyncio.sleep(0.1)
            assert not second.done()
            assert ingestor.stats["backpressure_waits"] >= 1
            service.gate.set()  # unblock the engine; everything drains
            assert await first == 60
            assert await second == 60
            await ingestor.close()
            ingested = [sid for ids, _ in service.batches for sid in ids]
            assert ingested == [0] * 60 + [1] * 60  # order kept, no drops
            return ingestor

        ingestor = run(scenario())
        assert ingestor.stats["ingested_events"] == 120

    def test_oversized_single_batch_admitted_alone(self):
        async def scenario():
            service = RecordingService()
            ingestor = await AsyncBatchIngestor(
                service, capacity_events=10, max_batch_events=10
            ).start()
            # Larger than the whole capacity: admitted when queue empty,
            # so oversized producers serialize instead of deadlocking.
            assert await ingestor.submit([0] * 50) == 50
            await ingestor.close()

        run(scenario())

    def test_queue_gauge_counts_events(self):
        async def scenario():
            service = RecordingService()
            service.gate.clear()
            ingestor = await AsyncBatchIngestor(
                service, capacity_events=1000
            ).start()
            task = asyncio.ensure_future(ingestor.submit([0] * 30))
            await asyncio.sleep(0.05)
            assert ingestor.queued_events == 30
            service.gate.set()
            await task
            await ingestor.close()
            assert ingestor.queued_events == 0

        run(scenario())


class TestCoalescing:
    def test_requests_merge_into_one_engine_call(self):
        async def scenario():
            service = RecordingService()
            service.gate.clear()  # hold the worker so requests pile up
            ingestor = await AsyncBatchIngestor(
                service, capacity_events=10_000, max_batch_events=10_000
            ).start()
            blocker = asyncio.ensure_future(ingestor.submit([9]))
            await asyncio.get_running_loop().run_in_executor(
                None, service.entered.wait, 10
            )
            tasks = [
                asyncio.ensure_future(ingestor.submit([i] * 10, [i] * 10))
                for i in range(5)
            ]
            await asyncio.sleep(0.1)
            service.gate.set()
            assert await blocker == 1
            assert [await t for t in tasks] == [10] * 5
            await ingestor.close()
            # first call is the blocker alone; the five queued requests
            # coalesce into one engine call, in submission order
            assert len(service.batches) == 2
            merged_ids, merged_items = service.batches[1]
            assert merged_ids == [i for i in range(5) for _ in range(10)]
            assert merged_items == merged_ids
            return ingestor

        ingestor = run(scenario())
        assert ingestor.stats["coalesced_requests"] == 4

    def test_mixed_unit_and_valued_items_concatenate(self):
        async def scenario():
            service = RecordingService()
            service.gate.clear()
            ingestor = await AsyncBatchIngestor(service).start()
            blocker = asyncio.ensure_future(ingestor.submit([7]))
            await asyncio.get_running_loop().run_in_executor(
                None, service.entered.wait, 10
            )
            a = asyncio.ensure_future(ingestor.submit([0, 0]))  # unit items
            b = asyncio.ensure_future(ingestor.submit([1, 1], [5, 6]))
            await asyncio.sleep(0.1)
            service.gate.set()
            await asyncio.gather(blocker, a, b)
            await ingestor.close()
            _, merged_items = service.batches[1]
            assert merged_items == [1, 1, 5, 6]

        run(scenario())


class TestLifecycleAndErrors:
    def test_engine_error_propagates_to_submitter(self):
        class FailingService:
            elements_processed = 0

            def ingest(self, site_ids, items=None):
                raise ValueError("poisoned batch")

        async def scenario():
            ingestor = await AsyncBatchIngestor(FailingService()).start()
            with pytest.raises(ValueError, match="poisoned"):
                await ingestor.submit([0, 1])
            await ingestor.close()

        run(scenario())

    def test_close_drains_admitted_work(self):
        async def scenario():
            service = RecordingService()
            ingestor = await AsyncBatchIngestor(service).start()
            tasks = [
                asyncio.ensure_future(ingestor.submit([i] * 5))
                for i in range(4)
            ]
            while ingestor.stats["submitted_requests"] < 4:
                await asyncio.sleep(0.01)
            await ingestor.close()
            assert [await t for t in tasks] == [5] * 4
            with pytest.raises(IngestorClosedError):
                await ingestor.submit([0])

        run(scenario())

    def test_length_mismatch_rejected(self):
        async def scenario():
            ingestor = await AsyncBatchIngestor(RecordingService()).start()
            with pytest.raises(ValueError, match="mismatch"):
                await ingestor.submit([0, 1], [1])
            await ingestor.close()

        run(scenario())

    def test_real_service_round_trip(self):
        async def scenario():
            service = TrackingService(num_sites=4, seed=2)
            service.register("total", RandomizedCountScheme(0.1))
            ingestor = await AsyncBatchIngestor(service).start()
            total = sum(
                await asyncio.gather(
                    *(ingestor.submit([i % 4] * 100) for i in range(8))
                )
            )
            await ingestor.close()
            assert total == 800
            assert service.elements_processed == 800
            assert service.query("total") > 0
            return service

        service = run(scenario())

        # The same stream ingested directly must agree exactly: the
        # ingest queue may only batch, never reorder.
        direct = TrackingService(num_sites=4, seed=2)
        direct.register("total", RandomizedCountScheme(0.1))
        for i in range(8):
            direct.ingest([i % 4] * 100)
        assert service.query("total") == direct.query("total")
        assert (
            service.job("total").comm.snapshot()
            == direct.job("total").comm.snapshot()
        )
