"""Unit tests for the write-ahead log: rotation, replay, torn tails."""

import os

import pytest

from repro.persistence.wal import (
    REC_BATCH,
    REC_REGISTER,
    REC_UNREGISTER,
    WriteAheadLog,
)


def wal_files(directory):
    return sorted(f for f in os.listdir(directory) if f.endswith(".seg"))


class TestAppendReplay:
    def test_batches_roundtrip_in_order(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append_batch([0, 1, 1], [10, 20, 30])
        wal.append_batch([2, 2], None)
        records = list(wal.records())
        assert [r[0] for r in records] == [REC_BATCH, REC_BATCH]
        assert [r[1] for r in records] == [0, 1]
        assert records[0][2:] == [[0, 1, 1], [10, 20, 30]]
        assert records[1][2:] == [[2, 2], None]
        wal.close()

    def test_tuple_items_stay_tuples(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        items = [("t0", 4), ("t1", 9), 7]
        wal.append_batch([0, 1, 0], items)
        (record,) = wal.records()
        assert record[3] == items
        assert isinstance(record[3][0], tuple)  # hashable again after replay
        wal.close()

    def test_register_unregister_records(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append_register("job-a", {"scheme": "blob"}, 123, None)
        wal.append_unregister("job-a")
        reg, unreg = wal.records()
        assert reg[0] == REC_REGISTER and reg[2:] == ["job-a", {"scheme": "blob"}, 123, None]
        assert unreg[0] == REC_UNREGISTER and unreg[2] == "job-a"
        wal.close()

    def test_after_seq_filters(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        for i in range(5):
            wal.append_batch([i], None)
        assert [r[1] for r in wal.records(after_seq=2)] == [3, 4]
        wal.close()


class TestRotation:
    def test_segments_rotate_and_replay_spans_them(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_records=3)
        for i in range(8):
            wal.append_batch([i], None)
        assert wal_files(tmp_path) == [
            "wal-000000000000.seg",
            "wal-000000000003.seg",
            "wal-000000000006.seg",
        ]
        assert [r[1] for r in wal.records()] == list(range(8))
        wal.close()

    def test_truncate_through_removes_covered_segments(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_records=2)
        for i in range(7):
            wal.append_batch([i], None)
        removed = wal.truncate_through(3)  # segments [0,1] and [2,3] covered
        assert removed == 2
        assert [r[1] for r in wal.records(after_seq=3)] == [4, 5, 6]
        wal.close()

    def test_truncate_never_removes_uncovered(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_records=2)
        for i in range(4):
            wal.append_batch([i], None)
        assert wal.truncate_through(2) == 1  # seg [2,3] still has record 3
        assert [r[1] for r in wal.records(after_seq=2)] == [3]
        wal.close()


class TestCrashTails:
    def test_reopen_continues_sequence(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_records=4)
        for i in range(3):
            wal.append_batch([i], None)
        wal.close()
        wal = WriteAheadLog(str(tmp_path), segment_records=4)
        assert wal.last_seq == 2
        wal.append_batch([9], None)
        assert [r[1] for r in wal.records()] == [0, 1, 2, 3]
        wal.close()

    def test_torn_final_line_is_discarded(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append_batch([0], None)
        wal.append_batch([1], None)
        wal.close()
        (segment,) = wal_files(tmp_path)
        path = os.path.join(str(tmp_path), segment)
        with open(path, "ab") as f:  # simulate a crash mid-append
            f.write(b'["batch",2,[9')
        wal = WriteAheadLog(str(tmp_path))
        assert wal.last_seq == 1
        assert [r[1] for r in wal.records()] == [0, 1]
        # The torn bytes were truncated away; new appends are clean.
        seq = wal.append_batch([5], None)
        assert seq == 2
        assert [r[2] for r in wal.records(after_seq=1)] == [[5]]
        wal.close()

    def test_empty_directory_is_fresh(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        assert wal.last_seq == -1
        assert list(wal.records()) == []
        wal.close()

    def test_rollback_last_erases_the_record(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append_batch([0], None)
        wal.append_batch([1], None)
        wal.rollback_last()
        assert wal.last_seq == 0
        assert [r[1] for r in wal.records()] == [0]
        # The next append reuses the rolled-back slot cleanly.
        assert wal.append_batch([2], None) == 1
        assert [r[2] for r in wal.records()] == [[0], [2]]
        wal.close()

    def test_int64_overflow_falls_back_to_json(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        big = 2**70
        wal.append_batch([0, 1], [big, -big])
        (record,) = wal.records()
        assert record[3] == [big, -big]
        wal.close()

    def test_numpy_arrays_accepted(self, tmp_path):
        np = pytest.importorskip("numpy")
        wal = WriteAheadLog(str(tmp_path))
        wal.append_batch(np.array([0, 1, 2]), np.array([5, 6, 7]))
        (record,) = wal.records()
        assert record[2] == [0, 1, 2]
        assert record[3] == [5, 6, 7]
        wal.close()
