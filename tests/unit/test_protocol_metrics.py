"""Unit tests for Message and the accounting ledgers."""

import pytest

from repro.runtime.metrics import CommStats, SpaceStats
from repro.runtime.protocol import Message


class TestMessage:
    def test_defaults(self):
        m = Message("ping")
        assert m.kind == "ping"
        assert m.payload is None
        assert m.words == 1

    def test_negative_words_rejected(self):
        with pytest.raises(ValueError):
            Message("x", None, -1)

    def test_frozen(self):
        m = Message("x", 1, 2)
        with pytest.raises(Exception):
            m.words = 5

    def test_zero_word_message_allowed(self):
        # Control signals can be modelled as 0-word (header-only) if a
        # protocol chooses to; accounting still counts the message.
        assert Message("hdr", words=0).words == 0


class TestCommStats:
    def test_uplink_accumulates(self):
        s = CommStats()
        s.record_uplink(3)
        s.record_uplink(2)
        assert s.uplink_messages == 2
        assert s.uplink_words == 5

    def test_downlink_accumulates(self):
        s = CommStats()
        s.record_downlink(1)
        assert s.downlink_messages == 1
        assert s.downlink_words == 1

    def test_broadcast_charges_k(self):
        s = CommStats()
        s.record_broadcast(2, k=10)
        assert s.broadcast_messages == 10
        assert s.broadcast_words == 20

    def test_totals(self):
        s = CommStats()
        s.record_uplink(1)
        s.record_downlink(2)
        s.record_broadcast(1, k=5)
        assert s.total_messages == 1 + 1 + 5
        assert s.total_words == 1 + 2 + 5

    def test_snapshot_is_plain_dict(self):
        s = CommStats()
        s.record_uplink(4)
        snap = s.snapshot()
        assert snap["uplink_words"] == 4
        assert snap["total_messages"] == 1
        # Mutating the snapshot must not affect the ledger.
        snap["uplink_words"] = 0
        assert s.uplink_words == 4


class TestSpaceStats:
    def test_high_water_mark(self):
        s = SpaceStats()
        s.record_site(0, 5)
        s.record_site(0, 3)
        s.record_site(0, 9)
        assert s.max_words_per_site[0] == 9

    def test_max_site_words_across_sites(self):
        s = SpaceStats()
        s.record_site(0, 5)
        s.record_site(1, 11)
        assert s.max_site_words == 11

    def test_mean_site_words(self):
        s = SpaceStats()
        s.record_site(0, 4)
        s.record_site(1, 8)
        assert s.mean_site_words == 6.0

    def test_empty_defaults(self):
        s = SpaceStats()
        assert s.max_site_words == 0
        assert s.mean_site_words == 0.0

    def test_coordinator_mark(self):
        s = SpaceStats()
        s.record_coordinator(7)
        s.record_coordinator(3)
        assert s.coordinator_max_words == 7
