"""Unit tests for the one-shot (k-party) protocols (Section 1.3)."""

import bisect
import math
import statistics

import pytest

from repro.oneshot import OneShotFrequency, OneShotRank, one_shot_count
from repro.runtime.rng import derive_rng
from repro.workloads import zipf_items


class TestOneShotCount:
    def test_exact(self):
        estimate, words = one_shot_count([10, 20, 30])
        assert estimate == 60.0
        assert words == 3

    def test_empty_sites(self):
        estimate, words = one_shot_count([0, 0])
        assert estimate == 0.0
        assert words == 2

    def test_cost_is_k(self):
        _, words = one_shot_count(range(100))
        assert words == 100


def zipf_partition(n, k, universe=200, seed=0):
    """Split a Zipf stream across k sites; return per-site count dicts
    plus the global truth."""
    source = zipf_items(universe, alpha=1.3, seed=seed)
    sites = [dict() for _ in range(k)]
    truth = {}
    for t in range(n):
        item = source(t)
        sites[t % k][item] = sites[t % k].get(item, 0) + 1
        truth[item] = truth.get(item, 0) + 1
    return sites, truth


class TestOneShotFrequency:
    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            OneShotFrequency(0.0, derive_rng(0, "osf"))

    def test_empty_input(self):
        proto = OneShotFrequency(0.1, derive_rng(0, "osf0")).run([{}, {}])
        assert proto.estimate_frequency("x") == 0.0
        assert proto.words == 2

    def test_heavy_items_accurate(self):
        n, k, eps = 40_000, 16, 0.05
        sites, truth = zipf_partition(n, k, seed=1)
        proto = OneShotFrequency(eps, derive_rng(1, "osf1")).run(sites)
        for item in range(5):
            assert abs(proto.estimate_frequency(item) - truth[item]) <= 3 * eps * n

    def test_unbiased(self):
        n, k, eps, runs = 10_000, 9, 0.1, 50
        sites, truth = zipf_partition(n, k, seed=2)
        estimates = [
            OneShotFrequency(eps, derive_rng(s, "osf2")).run(sites).estimate_frequency(1)
            for s in range(runs)
        ]
        mean = statistics.mean(estimates)
        sem = statistics.stdev(estimates) / math.sqrt(runs)
        assert abs(mean - truth[1]) <= 4 * sem + 0.01 * n

    def test_communication_near_sqrt_k_over_eps(self):
        n, k, eps = 60_000, 64, 0.02
        sites, _ = zipf_partition(n, k, universe=3_000, seed=3)
        proto = OneShotFrequency(eps, derive_rng(4, "osf3")).run(sites)
        bound = 2 * (math.sqrt(k) / eps) + k  # 2 words per shipped pair
        assert proto.words <= 3 * bound

    def test_heavy_hitters_query(self):
        n, k, eps = 30_000, 9, 0.02
        sites, truth = zipf_partition(n, k, seed=5)
        proto = OneShotFrequency(eps, derive_rng(6, "osf4")).run(sites)
        hh = proto.heavy_hitters(0.05)
        heaviest = max(truth, key=truth.get)
        assert heaviest in hh


class TestOneShotRank:
    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            OneShotRank(1.5, derive_rng(0, "osr"))

    def test_empty_input(self):
        proto = OneShotRank(0.1, derive_rng(0, "osr0")).run([[], []])
        assert proto.estimate_rank(5) == 0.0
        with pytest.raises(ValueError):
            proto.quantile(0.5)

    def test_rank_accuracy(self):
        n, k, eps = 40_000, 16, 0.05
        values = list(range(n))
        derive_rng(7, "shuffle").shuffle(values)
        sites = [values[i::k] for i in range(k)]
        proto = OneShotRank(eps, derive_rng(8, "osr1")).run(sites)
        for q in range(0, n, n // 10):
            assert abs(proto.estimate_rank(q) - q) <= 3 * eps * n

    def test_quantile_accuracy(self):
        n, k, eps = 30_000, 9, 0.05
        values = list(range(n))
        sites = [values[i::k] for i in range(k)]
        proto = OneShotRank(eps, derive_rng(9, "osr2")).run(sites)
        for phi in (0.25, 0.5, 0.75):
            assert abs(proto.quantile(phi) - phi * n) <= 3 * eps * n

    def test_communication_near_sqrt_k_over_eps(self):
        n, k, eps = 60_000, 64, 0.02
        values = list(range(n))
        sites = [values[i::k] for i in range(k)]
        proto = OneShotRank(eps, derive_rng(10, "osr3")).run(sites)
        bound = math.sqrt(k) / eps + k
        assert proto.words <= 3 * bound

    def test_uneven_site_sizes(self):
        values = list(range(10_000))
        sites = [values[:9_000], values[9_000:9_990], values[9_990:]]
        proto = OneShotRank(0.05, derive_rng(11, "osr4")).run(sites)
        assert abs(proto.estimate_rank(5_000) - 5_000) <= 3 * 0.05 * 10_000
