"""Unit tests for the network and the simulation driver."""

import pytest

from repro.runtime import (
    Coordinator,
    Message,
    Network,
    OneWayViolation,
    Simulation,
    Site,
    TrackingScheme,
)


class EchoSite(Site):
    """Reports every element; records coordinator messages."""

    def __init__(self, site_id, network):
        super().__init__(site_id, network)
        self.received = []
        self.n = 0

    def on_element(self, item) -> None:
        self.n += 1
        self.send("saw", item, words=2)

    def on_message(self, message: Message) -> None:
        self.received.append(message)

    def space_words(self) -> int:
        return self.n  # deliberately grows, to exercise space sampling


class EchoCoordinator(Coordinator):
    """Acks every third message; broadcasts every fifth."""

    def __init__(self, network):
        super().__init__(network)
        self.log = []

    def on_message(self, site_id, message):
        self.log.append((site_id, message))
        if len(self.log) % 3 == 0:
            self.send_to(site_id, "ack")
        if len(self.log) % 5 == 0:
            self.broadcast("sync", words=2)

    def space_words(self) -> int:
        return len(self.log)


class EchoScheme(TrackingScheme):
    name = "echo"

    def make_coordinator(self, network, k, seed):
        return EchoCoordinator(network)

    def make_site(self, network, site_id, k, seed):
        return EchoSite(site_id, network)


class TestNetwork:
    def test_requires_positive_sites(self):
        with pytest.raises(ValueError):
            Network(0)

    def test_bind_checks_site_count(self):
        net = Network(2)
        coord = EchoCoordinator(net)
        with pytest.raises(ValueError):
            net.bind(coord, [EchoSite(0, net)])

    def test_bind_rejects_duplicate_ids(self):
        net = Network(2)
        coord = EchoCoordinator(net)
        with pytest.raises(ValueError):
            net.bind(coord, [EchoSite(0, net), EchoSite(0, net)])

    def test_uplink_accounting(self):
        net = Network(1)
        coord = EchoCoordinator(net)
        site = EchoSite(0, net)
        net.bind(coord, [site])
        net.send_to_coordinator(0, Message("m", words=3))
        assert net.stats.uplink_messages == 1
        assert net.stats.uplink_words == 3
        assert coord.log[0][0] == 0

    def test_broadcast_reaches_all_and_costs_k(self):
        net = Network(3)
        coord = EchoCoordinator(net)
        sites = [EchoSite(i, net) for i in range(3)]
        net.bind(coord, sites)
        net.broadcast(Message("sync", words=2))
        assert all(len(s.received) == 1 for s in sites)
        assert net.stats.broadcast_messages == 3
        assert net.stats.broadcast_words == 6

    def test_one_way_blocks_downlink(self):
        net = Network(2, one_way=True)
        coord = EchoCoordinator(net)
        sites = [EchoSite(i, net) for i in range(2)]
        net.bind(coord, sites)
        with pytest.raises(OneWayViolation):
            net.send_to_site(0, Message("x"))
        with pytest.raises(OneWayViolation):
            net.broadcast(Message("x"))

    def test_recursion_guard(self):
        class LoopSite(EchoSite):
            def on_message(self, message):
                self.send("again")

        class LoopCoordinator(EchoCoordinator):
            def on_message(self, site_id, message):
                self.send_to(site_id, "again")

        net = Network(1)
        coord = LoopCoordinator(net)
        site = LoopSite(0, net)
        net.bind(coord, [site])
        with pytest.raises(RuntimeError, match="recursion"):
            net.send_to_coordinator(0, Message("go"))


class TestSimulation:
    def test_routes_elements_to_sites(self):
        sim = Simulation(EchoScheme(), 3)
        sim.process(1, "a")
        sim.process(2, "b")
        assert sim.sites[1].n == 1
        assert sim.sites[2].n == 1
        assert sim.sites[0].n == 0
        assert sim.elements_processed == 2

    def test_run_consumes_stream(self):
        sim = Simulation(EchoScheme(), 2)
        sim.run([(0, i) for i in range(10)])
        assert sim.sites[0].n == 10

    def test_checkpoint_callback(self):
        sim = Simulation(EchoScheme(), 2)
        seen = []
        sim.run(
            [(0, i) for i in range(10)],
            checkpoint_every=3,
            on_checkpoint=lambda s, t: seen.append(t),
        )
        assert seen == [3, 6, 9]

    def test_space_sampling_tracks_growth(self):
        sim = Simulation(EchoScheme(), 1, space_sample_interval=1)
        sim.run([(0, i) for i in range(7)])
        assert sim.space.max_words_per_site[0] == 7

    def test_summary_fields(self):
        sim = Simulation(EchoScheme(), 2)
        sim.run([(0, 1), (1, 2)])
        out = sim.summary()
        assert out["elements"] == 2
        assert out["uplink_messages"] == 2
        assert out["uplink_words"] == 4
        assert "max_site_space_words" in out
        assert out["coordinator_space_words"] >= 2

    def test_one_way_flag_propagates(self):
        sim = Simulation(EchoScheme(), 1, one_way=True)
        # EchoCoordinator acks on the 3rd message, which must now raise.
        sim.process(0, "a")
        sim.process(0, "b")
        with pytest.raises(OneWayViolation):
            sim.process(0, "c")
