"""Property-based tests for the tracking protocols.

These drive whole simulations with hypothesis-generated arrival patterns
and assert the invariants that must hold on *every* run: deterministic
guarantees, accounting consistency, estimator sanity, and reproducibility.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DeterministicCountScheme,
    DeterministicFrequencyScheme,
    RandomizedCountScheme,
    RandomizedFrequencyScheme,
    RandomizedRankScheme,
    Simulation,
)

# Streams as lists of site indices (k <= 6) with small payload alphabets.
site_streams = st.lists(
    st.integers(min_value=0, max_value=5), min_size=1, max_size=600
)
item_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=8),
    ),
    min_size=1,
    max_size=600,
)


class TestDeterministicCountInvariants:
    @given(sites=site_streams)
    @settings(max_examples=50, deadline=None)
    def test_estimate_brackets_truth(self, sites):
        eps = 0.1
        sim = Simulation(DeterministicCountScheme(eps), 6)
        n = 0
        for s in sites:
            sim.process(s, 1)
            n += 1
            est = sim.coordinator.estimate()
            assert est <= n
            assert est >= n / (1 + eps) - 6  # slack: one pre-report per site

    @given(sites=site_streams)
    @settings(max_examples=30, deadline=None)
    def test_one_way_only(self, sites):
        sim = Simulation(DeterministicCountScheme(0.1), 6, one_way=True)
        for s in sites:
            sim.process(s, 1)
        assert sim.comm.downlink_messages == 0


class TestRandomizedCountInvariants:
    @given(sites=site_streams, seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_estimate_nonnegative_and_finite(self, sites, seed):
        sim = Simulation(RandomizedCountScheme(0.2), 6, seed=seed)
        for s in sites:
            sim.process(s, 1)
            est = sim.coordinator.estimate()
            assert est >= 0.0
            assert est < 10 * len(sites) + 100

    @given(sites=site_streams, seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_reproducible(self, sites, seed):
        def run():
            sim = Simulation(RandomizedCountScheme(0.2), 6, seed=seed)
            for s in sites:
                sim.process(s, 1)
            return sim.coordinator.estimate(), sim.comm.total_messages

        assert run() == run()

    @given(sites=site_streams, seed=st.integers(min_value=0, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_p_consistency_between_parties(self, sites, seed):
        sim = Simulation(RandomizedCountScheme(0.2), 6, seed=seed)
        for s in sites:
            sim.process(s, 1)
            assert all(site.p == sim.coordinator.p for site in sim.sites)

    @given(sites=site_streams, seed=st.integers(min_value=0, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_exact_in_p_one_phase(self, sites, seed):
        # With eps=0.2 and k=6, sqrt(k)/eps ~ 12.2: while n_bar stays
        # below that, p == 1 and the estimate is exact.
        sim = Simulation(RandomizedCountScheme(0.2), 6, seed=seed)
        n = 0
        for s in sites:
            sim.process(s, 1)
            n += 1
            if sim.coordinator.p == 1.0:
                assert sim.coordinator.estimate() == n


class TestDeterministicFrequencyInvariants:
    @given(stream=item_streams)
    @settings(max_examples=40, deadline=None)
    def test_never_overcounts_any_item(self, stream):
        sim = Simulation(DeterministicFrequencyScheme(0.2), 6)
        truth = Counter()
        for s, j in stream:
            sim.process(s, j)
            truth[j] += 1
        for j in range(9):
            assert sim.coordinator.estimate_frequency(j) <= truth[j]

    @given(stream=item_streams)
    @settings(max_examples=40, deadline=None)
    def test_undercount_bounded(self, stream):
        eps = 0.2
        sim = Simulation(DeterministicFrequencyScheme(eps), 6)
        truth = Counter()
        for s, j in stream:
            sim.process(s, j)
            truth[j] += 1
        n = len(stream)
        for j, c in truth.items():
            est = sim.coordinator.estimate_frequency(j)
            # eps*n threshold slack plus MG sketch slack plus per-site
            # pre-first-report slack (one Delta per site).
            assert c - est <= eps * n + 6 + n / 40


class TestRandomizedFrequencyInvariants:
    @given(stream=item_streams, seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_estimates_finite_and_reproducible(self, stream, seed):
        def run():
            sim = Simulation(RandomizedFrequencyScheme(0.2), 6, seed=seed)
            for s, j in stream:
                sim.process(s, j)
            return [sim.coordinator.estimate_frequency(j) for j in range(9)]

        a = run()
        b = run()
        assert a == b
        assert all(abs(x) < 10 * len(stream) + 100 for x in a)

    @given(stream=item_streams, seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_exact_in_p_one_phase(self, stream, seed):
        sim = Simulation(RandomizedFrequencyScheme(0.2), 6, seed=seed)
        truth = Counter()
        for s, j in stream:
            sim.process(s, j)
            truth[j] += 1
            if sim.coordinator.p == 1.0 and not sim.coordinator.frozen:
                for q in truth:
                    assert sim.coordinator.estimate_frequency(q) == truth[q]


class TestRandomizedRankInvariants:
    @given(
        stream=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=1000),
            ),
            min_size=1,
            max_size=400,
        ),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_rank_monotone_and_total_sane(self, stream, seed):
        sim = Simulation(RandomizedRankScheme(0.2), 6, seed=seed)
        for s, v in stream:
            sim.process(s, v)
        coord = sim.coordinator
        ranks = [coord.estimate_rank(x) for x in (0, 250, 500, 750, 1001)]
        assert ranks == sorted(ranks)
        assert ranks[0] == 0.0
        total = coord.estimate_total()
        assert total >= 0
        # estimate at +inf equals the total-mass estimate
        assert abs(coord.estimate_rank(10**9) - total) < 1e-6

    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=100), min_size=1, max_size=300
        ),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_reproducible(self, values, seed):
        def run():
            sim = Simulation(RandomizedRankScheme(0.2), 6, seed=seed)
            for t, v in enumerate(values):
                sim.process(t % 6, v)
            return sim.coordinator.estimate_rank(50)

        assert run() == run()
