"""Property-based tests for the exponential histogram and window tracker."""

import bisect

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Simulation, WindowedCountScheme
from repro.sketch.exponential_histogram import ExponentialHistogram

# Non-decreasing timestamp sequences built from non-negative gaps.
gap_lists = st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=300)


def to_timestamps(gaps):
    t = 0
    out = []
    for g in gaps:
        t += g
        out.append(t)
    return out


class TestExponentialHistogramProperties:
    @given(gaps=gap_lists, window=st.integers(min_value=1, max_value=500))
    @settings(max_examples=60, deadline=None)
    def test_relative_error_invariant(self, gaps, window):
        eps = 0.2
        eh = ExponentialHistogram(window, eps)
        timestamps = to_timestamps(gaps)
        for i, t in enumerate(timestamps):
            eh.add(t)
            truth = i + 1 - bisect.bisect_right(timestamps, t - window, 0, i + 1)
            estimate = eh.estimate(t)
            assert abs(estimate - truth) <= eps * truth + 1

    @given(gaps=gap_lists, window=st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_estimate_never_negative_and_decays(self, gaps, window):
        eh = ExponentialHistogram(window, 0.2)
        timestamps = to_timestamps(gaps)
        for t in timestamps:
            eh.add(t)
        end = timestamps[-1]
        values = [eh.estimate(end + d) for d in (0, window // 2, window, 2 * window)]
        assert all(v >= 0 for v in values)
        assert values[-1] == 0.0
        # Monotone non-increasing as time passes with no arrivals.
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))

    @given(gaps=gap_lists, window=st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_snapshot_equals_live(self, gaps, window):
        eh = ExponentialHistogram(window, 0.2)
        timestamps = to_timestamps(gaps)
        for t in timestamps:
            eh.add(t)
        snap = eh.snapshot()
        now = timestamps[-1] + window // 3
        assert ExponentialHistogram.estimate_from_snapshot(
            snap, now, window
        ) == eh.estimate(now)

    @given(gaps=gap_lists)
    @settings(max_examples=40, deadline=None)
    def test_bucket_sizes_powers_of_two(self, gaps):
        eh = ExponentialHistogram(100, 0.3)
        for t in to_timestamps(gaps):
            eh.add(t)
            for _, size in eh.buckets:
                assert size & (size - 1) == 0


class TestWindowTrackerProperties:
    @given(
        gaps=gap_lists,
        sites=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=300),
        window=st.integers(min_value=5, max_value=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_estimate_bounded_by_truth_envelope(self, gaps, sites, window):
        timestamps = to_timestamps(gaps)
        n = min(len(timestamps), len(sites))
        sim = Simulation(WindowedCountScheme(window, 0.2), 4, seed=0)
        for i in range(n):
            sim.process(sites[i], timestamps[i])
        now = timestamps[n - 1]
        truth = n - bisect.bisect_right(timestamps, now - window, 0, n)
        estimate = sim.coordinator.estimate(now)
        # Loose envelope: within eps-ish slack plus one pending batch per
        # site (pre-first-report and in-flight counts).
        assert 0 <= estimate <= truth + 1
        assert estimate >= truth - 0.3 * truth - 2 * 4 - 2

    @given(gaps=gap_lists)
    @settings(max_examples=30, deadline=None)
    def test_decay_is_message_free(self, gaps):
        sim = Simulation(WindowedCountScheme(50, 0.2), 2, seed=0)
        timestamps = to_timestamps(gaps)
        for i, t in enumerate(timestamps):
            sim.process(i % 2, t)
        before = sim.comm.total_messages
        sim.coordinator.estimate(timestamps[-1] + 500)
        assert sim.comm.total_messages == before
