"""Property-based tests (hypothesis) for the streaming sketches."""

import bisect

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.rng import derive_rng
from repro.sketch import (
    GKSummary,
    MisraGries,
    QuantileSketchBuilder,
    SpaceSaving,
    StickySampler,
)

small_streams = st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300)
capacities = st.integers(min_value=1, max_value=20)


class TestMisraGriesProperties:
    @given(stream=small_streams, capacity=capacities)
    @settings(max_examples=60, deadline=None)
    def test_undercount_invariant(self, stream, capacity):
        mg = MisraGries(capacity)
        truth = {}
        for item in stream:
            mg.add(item)
            truth[item] = truth.get(item, 0) + 1
        for item, count in truth.items():
            est = mg.estimate(item)
            assert est <= count
            assert count - est <= len(stream) / (capacity + 1)

    @given(stream=small_streams, capacity=capacities)
    @settings(max_examples=60, deadline=None)
    def test_counter_budget(self, stream, capacity):
        mg = MisraGries(capacity)
        for item in stream:
            mg.add(item)
            assert len(mg.counters) <= capacity
            assert all(c > 0 for c in mg.counters.values())

    @given(stream=small_streams, capacity=capacities)
    @settings(max_examples=40, deadline=None)
    def test_n_tracks_stream_length(self, stream, capacity):
        mg = MisraGries(capacity)
        for item in stream:
            mg.add(item)
        assert mg.n == len(stream)


class TestSpaceSavingProperties:
    @given(stream=small_streams, capacity=capacities)
    @settings(max_examples=60, deadline=None)
    def test_overcount_invariant(self, stream, capacity):
        ss = SpaceSaving(capacity)
        truth = {}
        for item in stream:
            ss.add(item)
            truth[item] = truth.get(item, 0) + 1
        for item in ss.counts:
            assert ss.estimate(item) >= truth[item]
            assert ss.estimate(item) - truth[item] <= ss.error_bound()
            assert ss.guaranteed_count(item) <= truth[item]

    @given(stream=small_streams, capacity=capacities)
    @settings(max_examples=40, deadline=None)
    def test_total_count_conserved(self, stream, capacity):
        # Sum of stored counts >= stream length (overestimates only),
        # and is exactly n when nothing was evicted.
        ss = SpaceSaving(capacity)
        for item in stream:
            ss.add(item)
        if len(set(stream)) <= capacity:
            assert sum(ss.counts.values()) == len(stream)
        else:
            assert sum(ss.counts.values()) >= 0


class TestGKProperties:
    @given(
        values=st.lists(
            st.integers(min_value=-1000, max_value=1000),
            min_size=1,
            max_size=400,
        ),
        eps=st.sampled_from([0.05, 0.1, 0.2]),
    )
    @settings(max_examples=60, deadline=None)
    def test_rank_error_bound(self, values, eps):
        gk = GKSummary(eps)
        for v in values:
            gk.add(v)
        svals = sorted(values)
        n = len(values)
        for x in {svals[0], svals[n // 2], svals[-1], svals[-1] + 1}:
            true = bisect.bisect_left(svals, x)
            assert abs(gk.rank(x) - true) <= eps * n + 1

    @given(
        values=st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=300),
    )
    @settings(max_examples=40, deadline=None)
    def test_g_sums_to_n(self, values):
        gk = GKSummary(0.1)
        for v in values:
            gk.add(v)
        assert sum(gk.g) == len(values)
        assert gk.values == sorted(gk.values)


class TestQuantileSketchProperties:
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=1,
            max_size=500,
        ),
        m=st.sampled_from([4, 8, 16]),
        seed=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_weight_conservation(self, values, m, seed):
        b = QuantileSketchBuilder(m, derive_rng(seed, "prop"))
        for v in values:
            b.add(v)
        summary = b.finalize()
        assert summary.total_weight == len(values)
        assert summary.values == sorted(summary.values)

    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=100), min_size=1, max_size=200
        ),
        seed=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_rank_monotone(self, values, seed):
        b = QuantileSketchBuilder(8, derive_rng(seed, "prop2"))
        for v in values:
            b.add(v)
        s = b.finalize()
        ranks = [s.rank(x) for x in range(0, 102)]
        assert ranks == sorted(ranks)
        assert ranks[-1] == len(values)

    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=1000), min_size=1, max_size=300
        ),
        split=st.integers(min_value=0, max_value=300),
        seed=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_weight_conservation(self, values, split, seed):
        split = min(split, len(values))
        a = QuantileSketchBuilder(8, derive_rng(seed, "pa"))
        b = QuantileSketchBuilder(8, derive_rng(seed, "pb"))
        for v in values[:split]:
            a.add(v)
        for v in values[split:]:
            b.add(v)
        a.merge_from(b)
        assert a.finalize().total_weight == len(values)


class TestStickyProperties:
    @given(
        stream=small_streams,
        p=st.sampled_from([0.1, 0.5, 1.0]),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_counts_never_exceed_truth(self, stream, p, seed):
        s = StickySampler(p, derive_rng(seed, "sticky"))
        truth = {}
        for item in stream:
            s.add(item)
            truth[item] = truth.get(item, 0) + 1
            assert s.count(item) <= truth[item]

    @given(stream=small_streams, seed=st.integers(min_value=0, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_p_one_is_exact(self, stream, seed):
        s = StickySampler(1.0, derive_rng(seed, "sticky1"))
        truth = {}
        for item in stream:
            s.add(item)
            truth[item] = truth.get(item, 0) + 1
        assert all(s.count(j) == c for j, c in truth.items())
