"""Property tests for communication-accounting invariants.

Whatever a protocol does, the ledgers must stay consistent: totals equal
the sums of the directional counters, broadcast messages are multiples
of k, words are never negative, and boosting multiplies costs exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    MedianBoostedScheme,
    RandomizedCountScheme,
    RandomizedFrequencyScheme,
    Simulation,
)

streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=6),
    ),
    min_size=1,
    max_size=400,
)


def ledger_invariants(sim: Simulation) -> None:
    stats = sim.comm
    assert stats.total_messages == (
        stats.uplink_messages + stats.downlink_messages + stats.broadcast_messages
    )
    assert stats.total_words == (
        stats.uplink_words + stats.downlink_words + stats.broadcast_words
    )
    assert stats.broadcast_messages % sim.num_sites == 0
    assert stats.uplink_words >= 0
    assert stats.broadcast_words >= 0


class TestLedgerInvariants:
    @given(stream=streams, seed=st.integers(min_value=0, max_value=20))
    @settings(max_examples=50, deadline=None)
    def test_count_scheme_ledger(self, stream, seed):
        sim = Simulation(RandomizedCountScheme(0.2), 5, seed=seed)
        for s, _ in stream:
            sim.process(s, 1)
        ledger_invariants(sim)

    @given(stream=streams, seed=st.integers(min_value=0, max_value=20))
    @settings(max_examples=50, deadline=None)
    def test_frequency_scheme_ledger(self, stream, seed):
        sim = Simulation(RandomizedFrequencyScheme(0.2), 5, seed=seed)
        for s, j in stream:
            sim.process(s, j)
        ledger_invariants(sim)

    @given(stream=streams, seed=st.integers(min_value=0, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_boosted_cost_at_least_each_copy(self, stream, seed):
        # The boosted wrapper's ledger must dominate any single copy run
        # with the same seed derivation (copies only add traffic).
        boosted = Simulation(
            MedianBoostedScheme(RandomizedCountScheme(0.2), 3), 5, seed=seed
        )
        for s, _ in stream:
            boosted.process(s, 1)
        ledger_invariants(boosted)
        single = Simulation(RandomizedCountScheme(0.2), 5, seed=seed * 1_000_003)
        for s, _ in stream:
            single.process(s, 1)
        assert boosted.comm.total_messages >= single.comm.total_messages

    @given(stream=streams, seed=st.integers(min_value=0, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_space_samples_nonnegative(self, stream, seed):
        sim = Simulation(
            RandomizedFrequencyScheme(0.2), 5, seed=seed, space_sample_interval=7
        )
        for s, j in stream:
            sim.process(s, j)
        sim.sample_space()
        assert all(v >= 0 for v in sim.space.max_words_per_site.values())
        assert sim.space.coordinator_max_words >= 0
