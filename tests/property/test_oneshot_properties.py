"""Property-based tests for the one-shot protocols and accounting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oneshot import OneShotFrequency, OneShotRank, one_shot_count
from repro.runtime.rng import derive_rng

site_counts = st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=10)

# Per-site item->count dicts over a small universe.
site_datasets = st.lists(
    st.dictionaries(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=1, max_value=50),
        max_size=10,
    ),
    min_size=1,
    max_size=8,
)

site_values = st.lists(
    st.lists(st.integers(min_value=0, max_value=1000), max_size=150),
    min_size=1,
    max_size=8,
)


class TestOneShotCountProperties:
    @given(counts=site_counts)
    @settings(max_examples=50, deadline=None)
    def test_exact_and_k_words(self, counts):
        estimate, words = one_shot_count(counts)
        assert estimate == sum(counts)
        assert words == len(counts)


class TestOneShotFrequencyProperties:
    @given(datasets=site_datasets, seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_estimates_nonnegative_and_bounded(self, datasets, seed):
        proto = OneShotFrequency(0.2, derive_rng(seed, "osfp")).run(datasets)
        n = proto.n
        for item in range(16):
            est = proto.estimate_frequency(item)
            assert est >= 0.0
            # A Horvitz-Thompson estimate never exceeds k/p-ish blowup;
            # sanity bound: cannot exceed n / min inclusion probability,
            # which for shipped pairs is f/pi <= f * (1/(f*p)) = 1/p.
            assert est <= n + len(datasets) / max(
                1e-9, min(1.0, (len(datasets) ** 0.5) / (0.2 * max(n, 1)))
            )

    @given(datasets=site_datasets, seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_words_bounded_by_data(self, datasets, seed):
        proto = OneShotFrequency(0.2, derive_rng(seed, "osfp2")).run(datasets)
        pairs = sum(len(d) for d in datasets)
        assert proto.words <= len(datasets) + 2 * pairs

    @given(datasets=site_datasets, seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_exact_when_p_saturates(self, datasets, seed):
        # With eps large and n small, p = min(1, sqrt(k)/(eps n)) is
        # often 1: every pair ships and estimates are exact.
        proto = OneShotFrequency(0.9, derive_rng(seed, "osfp3")).run(datasets)
        import math

        n = proto.n
        if n and math.sqrt(len(datasets)) / (0.9 * n) >= 1.0:
            truth = {}
            for d in datasets:
                for j, c in d.items():
                    truth[j] = truth.get(j, 0) + c
            for j, c in truth.items():
                assert proto.estimate_frequency(j) == c


class TestOneShotRankProperties:
    @given(values=site_values, seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_rank_monotone_and_bounded(self, values, seed):
        proto = OneShotRank(0.2, derive_rng(seed, "osrp")).run(values)
        ranks = [proto.estimate_rank(x) for x in (0, 250, 500, 750, 1001)]
        assert ranks == sorted(ranks)
        assert all(0 <= r <= proto.n for r in ranks)

    @given(values=site_values, seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_words_at_most_data(self, values, seed):
        proto = OneShotRank(0.2, derive_rng(seed, "osrp2")).run(values)
        assert proto.words <= proto.n + len(values)
