"""Setup shim: legacy layout so editable installs work offline.

(This environment has no network and no `wheel` package, so PEP 517
editable installs are unavailable; `setup.py` + `setup.cfg` keeps
`pip install -e .` working everywhere.)
"""

from setuptools import setup

setup()
