"""Setup shim: legacy layout so editable installs work offline.

(This environment has no network and no `wheel` package, so PEP 517
editable installs are unavailable; a plain `setup.py` keeps
`pip install -e .` working everywhere.)

Installs the `repro` package from `src/` and the `repro` console script
(the CLI in `repro.cli:main`, including the `repro serve` multi-tenant
service subcommand).
"""

import os
import re

from setuptools import find_packages, setup


def read_version() -> str:
    init = os.path.join(os.path.dirname(__file__), "src", "repro", "__init__.py")
    with open(init) as f:
        match = re.search(r'^__version__ = "([^"]+)"', f.read(), re.M)
    if not match:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-distributed-tracking",
    version=read_version(),
    description=(
        "Randomized distributed tracking of counts, frequencies and ranks "
        "(PODS 2012 reproduction) with a multi-tenant tracking service"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    # numpy accelerates batched ingestion (run decomposition); the library
    # degrades gracefully without it, but the service targets it.
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
